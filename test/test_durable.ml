(* Durable sessions: engine checkpoint round-trips, WAL scanning and
   torn-tail degradation, checkpoint fallback, and the kill-point
   recovery matrix — for every durability event of a mixed soak, crash
   there, recover, and require the recovered pool fingerprints and
   per-tenant accounting to be byte-identical to the uninterrupted
   reference run at the same committed sequence number. *)

module Json = Tprof.Json
module Diag = Terra.Diag
module Engine = Terra.Engine
module Server = Serve.Server
module Durable = Serve.Durable
module Tenant = Serve.Tenant
module Pool = Serve.Pool

let quick = Harness.quick
let checks = Alcotest.(check string)
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let jget j k =
  match Json.member k j with
  | Some v -> v
  | None -> Alcotest.failf "report missing field %S" k

let jint j k =
  match jget j k with
  | Json.Int n -> n
  | _ -> Alcotest.failf "field %S is not an int" k

(* ------------------------------------------------------------------ *)
(* Scratch directories and file plumbing *)

let fresh_dir name =
  let d = Filename.temp_file ("terra-durable-" ^ name ^ "-") "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let rec rm_rf p =
  if Sys.file_exists p then
    if Sys.is_directory p then begin
      Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_bytes path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let copy_dir src dst =
  Sys.mkdir dst 0o755;
  Array.iter
    (fun f ->
      write_bytes (Filename.concat dst f) (read_bytes (Filename.concat src f)))
    (Sys.readdir src)

let flip_byte data off =
  let b = Bytes.of_string data in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x5a));
  Bytes.to_string b

(* ------------------------------------------------------------------ *)
(* Engine checkpoints *)

(* The arena floor (statics + stack + 1 MiB of heap) keeps fingerprints
   cheap: the matrix below recovers hundreds of pools. *)
let mem_bytes = 10 * 1024 * 1024

let make_eng () =
  Terrastd.create ~mem_bytes ~checked:true ~profile:true ()

let with_ckpt_file f =
  let path = Filename.temp_file "terra-ckpt" ".bin" in
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

let checkpoint_to path eng =
  let oc = open_out_bin path in
  Engine.checkpoint eng oc;
  close_out oc

let restore_from path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> Engine.restore ~make:make_eng ic)

let alloc_src =
  "local std = terralib.includec(\"stdlib.h\") terra g() var p = \
   [&int32](std.malloc(32)) p[0] = 7 var v = p[0] std.free([&uint8](p)) \
   return v end print(g())"

let engine_tests =
  [
    quick "an engine checkpoint round-trips through a channel" (fun () ->
        let eng = make_eng () in
        let out, r =
          Engine.run_capture_protected eng
            "terra f(n : int32) return n * 3 + 1 end print(f(7))"
        in
        checkb "seed run succeeds" true (Result.is_ok r);
        checkb "seed run printed" true (String.length out > 0);
        with_ckpt_file (fun path ->
            checkpoint_to path eng;
            let eng' = restore_from path in
            checks "restored fingerprint matches"
              (Engine.fingerprint eng) (Engine.fingerprint eng');
            (* both engines must continue identically from here *)
            let o1, r1 = Engine.run_capture_protected eng alloc_src in
            let o2, r2 = Engine.run_capture_protected eng' alloc_src in
            checkb "continuations agree on success" (Result.is_ok r1)
              (Result.is_ok r2);
            checks "continuations print identically" o1 o2;
            checks "continuations end byte-identical"
              (Engine.fingerprint eng) (Engine.fingerprint eng')));
    quick "checkpoint damage is a structured ckpt.bad-file" (fun () ->
        let eng = make_eng () in
        ignore (Engine.run_capture_protected eng alloc_src);
        with_ckpt_file (fun path ->
            checkpoint_to path eng;
            let blob = read_bytes path in
            let expect_bad what data =
              let p = Filename.temp_file "terra-ckpt" ".bad" in
              Fun.protect
                ~finally:(fun () -> rm_rf p)
                (fun () ->
                  write_bytes p data;
                  let ic = open_in_bin p in
                  Fun.protect
                    ~finally:(fun () -> close_in_noerr ic)
                    (fun () ->
                      match Engine.restore ~make:make_eng ic with
                      | _ -> Alcotest.failf "%s checkpoint restored" what
                      | exception Diag.Error d ->
                          checks (what ^ " code") "ckpt.bad-file" d.Diag.code))
            in
            expect_bad "flipped-payload"
              (flip_byte blob (String.length blob - 5));
            expect_bad "flipped-header" (flip_byte blob 2);
            expect_bad "truncated"
              (String.sub blob 0 (String.length blob / 2));
            expect_bad "empty" ""));
  ]

(* ------------------------------------------------------------------ *)
(* Server-side durability plumbing *)

(* One config for every journal/recover pair in this file: recovery
   refuses a digest mismatch, so the pair must agree exactly. *)
let soak_config =
  {
    Server.default_config with
    pool_size = 2;
    recycle_after = 64;
    checked = true;
    verify_rollback = true;
    mem_bytes = Some mem_bytes;
  }

let run_line ?src ?tenant ?retries ?fail_alloc () =
  let opt k v f = match v with Some x -> [ (k, f x) ] | None -> [] in
  Json.to_string
    (Json.Obj
       (("op", Json.Str "run")
       :: (opt "src" src (fun s -> Json.Str s)
          @ opt "tenant" tenant (fun s -> Json.Str s)
          @ opt "retries" retries (fun n -> Json.Int n)
          @ opt "fail_alloc" fail_alloc (fun n -> Json.Int n))))

let good_src = "terra f() return 40 + 2 end print(f())"
let divzero_src = "terra d(n : int32) return 10 / n end print(d(0))"

let oob_src =
  "local std = terralib.includec(\"stdlib.h\") terra bad() var p = \
   [&int32](std.malloc(16)) p[5] = 1 std.free([&uint8](p)) return 0 end \
   print(bad())"

(* The soak mix: mostly well-behaved, plus deterministic traps (breaker
   traffic), a sanitizer violation (rollback traffic), injected
   transient faults (retry traffic), and a malformed line (parse-error
   traffic).  Everything here is journaled, so committed seq == served. *)
let soak_line i =
  match i mod 10 with
  | 0 -> run_line ~src:oob_src ~tenant:"hostile" ()
  | 3 | 6 -> run_line ~src:divzero_src ~tenant:"spiky" ()
  | 9 -> run_line ~src:alloc_src ~tenant:"flaky" ~fail_alloc:1 ~retries:2 ()
  | 5 when i mod 50 = 25 -> "{\"op\":"
  | 1 | 4 | 7 -> run_line ~src:alloc_src ~tenant:"web" ()
  | _ -> run_line ~src:good_src ~tenant:"web" ()

let feed server line =
  match Server.handle server line with
  | Some (j, `Continue) -> j
  | Some (_, `Shutdown) -> Alcotest.failf "line %S shut the server down" line
  | None -> Alcotest.failf "line %S produced no response" line

let close_journal (server : Server.t) =
  match server.Server.journal with
  | Some j -> Durable.close j
  | None -> ()

let slot_fp (server : Server.t) id =
  Engine.fingerprint server.Server.pool.Pool.slots.(id).Pool.eng

let slot_fps (server : Server.t) =
  Array.init (Pool.size server.Server.pool) (slot_fp server)

(* Reference state at a committed sequence number: everything the
   acceptance criteria compare after recovery. *)
type refpoint = {
  rp_served : int;
  rp_tenants : Tenant.snapshot list;
  rp_fps : string array;
}

let refpoint_of (server : Server.t) fps =
  {
    rp_served = server.Server.served;
    rp_tenants = List.map Tenant.snapshot (Tenant.all server.Server.tenants);
    rp_fps = Array.copy fps;
  }

(* Drive [n] soak requests through a durable server, recording the
   reference state after every commit.  Only the serving slot's
   fingerprint can change per request, so the running vector recomputes
   just that one. *)
let drive_soak server n =
  let fps = slot_fps server in
  let refs = Array.make (n + 1) (refpoint_of server fps) in
  for i = 1 to n do
    let resp = feed server (soak_line i) in
    (match Json.member "engine" resp with
    | Some (Json.Int id) -> fps.(id) <- slot_fp server id
    | _ -> ());
    refs.(i) <- refpoint_of server fps
  done;
  refs

let check_refpoint ~ctx (refs : refpoint array) (server : Server.t) k =
  let rp = refs.(k) in
  checki (ctx ^ ": served") rp.rp_served server.Server.served;
  let tenants =
    List.map Tenant.snapshot (Tenant.all server.Server.tenants)
  in
  checkb (ctx ^ ": per-tenant accounting is byte-identical") true
    (tenants = rp.rp_tenants);
  Array.iteri
    (fun id fp ->
      checks (Printf.sprintf "%s: slot %d fingerprint" ctx id) fp
        (slot_fp server id))
    rp.rp_fps

let recover_ok ~ctx ?(config = soak_config) ?(interval = 100) dir =
  match Server.recover ~config ~dir ~interval () with
  | Ok (server, report) -> (server, report)
  | Error d -> Alcotest.failf "%s: recovery failed: %s" ctx d.Diag.code

(* Mirror of the WAL seal (Durable.seal is not exported): tests use it
   to append records the scanner must accept. *)
let sealed fields =
  let body = Json.to_string (Json.Obj fields) in
  Json.to_string
    (Json.Obj
       (fields @ [ ("md5", Json.Str (Digest.to_hex (Digest.string body))) ]))

let append_to_wal dir data =
  let wals =
    List.sort compare
      (List.filter
         (fun f -> Filename.check_suffix f ".log")
         (Array.to_list (Sys.readdir dir)))
  in
  match List.rev wals with
  | newest :: _ ->
      let oc =
        open_out_gen
          [ Open_wronly; Open_append; Open_binary ]
          0o644
          (Filename.concat dir newest)
      in
      output_string oc data;
      close_out oc
  | [] -> Alcotest.fail "no WAL file to mutate"

let with_dir name f =
  let dir = fresh_dir name in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let durable_server ~dir ?(config = soak_config) ?(interval = 100) ?crash_at
    ?on_event () =
  let server = Server.create ~config () in
  (match Server.enable_durability server ~dir ~interval ?crash_at ?on_event ()
   with
  | Ok () -> ()
  | Error d -> Alcotest.failf "enable_durability failed: %s" d.Diag.code);
  server

let plumbing_tests =
  [
    quick "a durable session journals, checkpoints, and recovers" (fun () ->
        with_dir "basic" (fun dir ->
            let server = durable_server ~dir ~interval:4 () in
            let refs = drive_soak server 10 in
            ignore (Server.handle_oversize server 2_000_000);
            let after_oversize = refpoint_of server (slot_fps server) in
            close_journal server;
            let recovered, report = recover_ok ~ctx:"basic" dir in
            checki "recovered seq" 11 (jint report "seq");
            checki "nothing was discarded" 0 (jint report "discarded");
            checkb "no torn tail" true (jget report "torn" = Json.Null);
            (* barrier 8 (interval 4 over 11 commits), so the replayed
               suffix is requests 9..11 *)
            checki "barrier" 8 (jint report "barrier");
            checki "replayed" 3 (jint report "replayed");
            checki "served" 11 recovered.Server.served;
            checkb "state matches the reference run" true
              (refpoint_of recovered (slot_fps recovered) = after_oversize);
            ignore refs;
            close_journal recovered));
    quick "a second --durable on a journaled dir is refused" (fun () ->
        with_dir "refuse" (fun dir ->
            let server = durable_server ~dir () in
            close_journal server;
            let other = Server.create ~config:soak_config () in
            match Server.enable_durability other ~dir () with
            | Ok () -> Alcotest.fail "journaled dir was reused"
            | Error d -> checks "code" "durable.dir-not-empty" d.Diag.code));
    quick "recovery without a journal or checkpoint is structured"
      (fun () ->
        (match
           Server.recover ~config:soak_config
             ~dir:"/nonexistent/terra-durable" ()
         with
        | Ok _ -> Alcotest.fail "recovered from nothing"
        | Error d -> checks "no-journal" "recover.no-journal" d.Diag.code);
        (* crash before the first durability event: the WAL file exists
           but no checkpoint was ever completed *)
        with_dir "precrash" (fun dir ->
            (try
               let server = Server.create ~config:soak_config () in
               match Server.enable_durability server ~dir ~crash_at:1 () with
               | _ -> Alcotest.fail "expected a simulated crash"
             with Durable.Crashed n -> checki "crash event" 1 n);
            match Server.recover ~config:soak_config ~dir () with
            | Ok _ -> Alcotest.fail "recovered without a checkpoint"
            | Error d ->
                checks "no-checkpoint" "recover.no-checkpoint" d.Diag.code));
    quick "recovery refuses a mismatched server config" (fun () ->
        with_dir "config" (fun dir ->
            let server = durable_server ~dir () in
            ignore (feed server (soak_line 1));
            close_journal server;
            let other = { soak_config with recycle_after = 7 } in
            match Server.recover ~config:other ~dir () with
            | Ok _ -> Alcotest.fail "config mismatch recovered"
            | Error d ->
                checks "code" "recover.config-mismatch" d.Diag.code));
  ]

(* ------------------------------------------------------------------ *)
(* Torn tails and checkpoint fallback *)

let torn_tests =
  [
    quick "a torn WAL tail degrades to the last committed record"
      (fun () ->
        with_dir "torn" (fun dir ->
            let server = durable_server ~dir ~interval:100 () in
            let refs = drive_soak server 6 in
            close_journal server;
            let pristine = dir ^ ".pristine" in
            copy_dir dir pristine;
            Fun.protect
              ~finally:(fun () -> rm_rf pristine)
              (fun () ->
                let case name mutate check =
                  let d = dir ^ "." ^ name in
                  copy_dir pristine d;
                  Fun.protect
                    ~finally:(fun () -> rm_rf d)
                    (fun () ->
                      mutate d;
                      let recovered, report = recover_ok ~ctx:name d in
                      check report;
                      checki (name ^ ": seq") 6 (jint report "seq");
                      check_refpoint ~ctx:name refs recovered 6;
                      close_journal recovered)
                in
                let torn_reason report =
                  match jget report "torn" with
                  | Json.Obj _ as t ->
                      (match Json.member "reason" t with
                      | Some (Json.Str r) -> r
                      | _ -> "<none>")
                  | _ -> "<null>"
                in
                case "ragged"
                  (fun d -> append_to_wal d "{\"rec\":\"beg")
                  (fun report ->
                    checks "ragged reason" "unterminated final record"
                      (torn_reason report);
                    checki "ragged discards nothing" 0
                      (jint report "discarded"));
                case "flipped"
                  (fun d ->
                    append_to_wal d
                      (flip_byte
                         (sealed
                            [
                              ("rec", Json.Str "begin"); ("seq", Json.Int 7);
                              ("line", Json.Str "x");
                            ])
                         10
                      ^ "\n"))
                  (fun report ->
                    checks "flipped reason" "record digest mismatch"
                      (torn_reason report));
                case "unsealed"
                  (fun d ->
                    append_to_wal d
                      (Json.to_string
                         (Json.Obj [ ("rec", Json.Str "begin") ])
                      ^ "\n"))
                  (fun report ->
                    checks "unsealed reason" "record missing md5 seal"
                      (torn_reason report));
                case "uncommitted"
                  (fun d ->
                    append_to_wal d
                      (sealed
                         [
                           ("rec", Json.Str "begin"); ("seq", Json.Int 7);
                           ("line", Json.Str (soak_line 1));
                         ]
                      ^ "\n"))
                  (fun report ->
                    checkb "uncommitted is not torn" true
                      (jget report "torn" = Json.Null);
                    checki "uncommitted begin is discarded" 1
                      (jint report "discarded")))));
    quick "a corrupt newest checkpoint falls back one barrier" (fun () ->
        with_dir "fallback" (fun dir ->
            let server = durable_server ~dir ~interval:4 () in
            let refs = drive_soak server 10 in
            close_journal server;
            (* generations now: ckpt-4, ckpt-8, wal-4, wal-8 *)
            let newest = Filename.concat dir "ckpt-0000000008" in
            checkb "newest checkpoint exists" true (Sys.file_exists newest);
            let blob = read_bytes newest in
            write_bytes newest (flip_byte blob (String.length blob - 3));
            let recovered, report = recover_ok ~ctx:"fallback" dir in
            checki "fell back one barrier" 4 (jint report "barrier");
            checki "replayed the whole suffix" 6 (jint report "replayed");
            checki "seq" 10 (jint report "seq");
            (match jget report "skipped_checkpoints" with
            | Json.List [ Json.Obj kvs ] ->
                checkb "skip names the bad file" true
                  (List.assoc_opt "file" kvs
                  = Some (Json.Str "ckpt-0000000008"))
            | _ -> Alcotest.fail "expected one skipped checkpoint");
            check_refpoint ~ctx:"fallback" refs recovered 10;
            close_journal recovered));
  ]

(* ------------------------------------------------------------------ *)
(* The kill-point matrix *)

(* Crash-at N aborts before the Nth event's action, so the disk state
   at crash-at N is exactly the state after event N-1 — which the
   on_event hook snapshots.  Snapshot evt-n therefore *is* the crash
   state for crash-at n+1, and iterating every snapshot covers every
   kill point except crash-at 1 (no checkpoint yet; covered above). *)
let matrix_tests =
  [
    quick "recovery is exact at every kill point of a 200-request soak"
      (fun () ->
        with_dir "matrix" (fun dir ->
            let snap_root = fresh_dir "matrix-snaps" in
            Fun.protect
              ~finally:(fun () -> rm_rf snap_root)
              (fun () ->
                let requests = 200 in
                let committed_at = Hashtbl.create 512 in
                let journal = ref None in
                let on_event n =
                  let d =
                    Filename.concat snap_root (Printf.sprintf "evt-%04d" n)
                  in
                  copy_dir dir d;
                  Hashtbl.replace committed_at n
                    (match !journal with
                    | Some (j : Durable.t) -> j.Durable.committed
                    | None -> 0)
                in
                let server =
                  durable_server ~dir ~interval:16 ~on_event ()
                in
                journal := server.Server.journal;
                let refs = drive_soak server requests in
                let events =
                  (Option.get server.Server.journal).Durable.events
                in
                close_journal server;
                checkb "the soak produced a real event stream" true
                  (events > 2 * requests);
                let discards = ref 0 in
                for n = 1 to events do
                  let ctx = Printf.sprintf "event %d" n in
                  let d =
                    Filename.concat snap_root (Printf.sprintf "evt-%04d" n)
                  in
                  match Server.recover ~config:soak_config ~dir:d () with
                  | Error e when e.Diag.code = "recover.no-checkpoint" ->
                      (* only legitimate before the very first checkpoint
                         rename: nothing was committed, and no completed
                         checkpoint file exists in the snapshot *)
                      checki (ctx ^ ": unrecoverable only at commit 0") 0
                        (Hashtbl.find committed_at n);
                      checkb (ctx ^ ": and only without a checkpoint") false
                        (Array.exists
                           (fun f ->
                             String.length f >= 5
                             && String.sub f 0 5 = "ckpt-"
                             && not (Filename.check_suffix f ".tmp"))
                           (Sys.readdir d))
                  | Error e ->
                      Alcotest.failf "%s: recovery failed: %s" ctx
                        e.Diag.code
                  | Ok (recovered, report) ->
                      let k = jint report "seq" in
                      (* zero loss, nothing phantom: recovery lands
                         exactly on what was committed when the crash
                         hit *)
                      checki (ctx ^ ": recovers the committed seq")
                        (Hashtbl.find committed_at n)
                        k;
                      let discarded = jint report "discarded" in
                      checkb (ctx ^ ": at most one uncommitted begin") true
                        (discarded = 0 || discarded = 1);
                      discards := !discards + discarded;
                      checkb (ctx ^ ": consistent snapshots are never torn")
                        true
                        (jget report "torn" = Json.Null);
                      check_refpoint ~ctx refs recovered k;
                      close_journal recovered
                done;
                (* the matrix must have exercised the in-flight case *)
                checkb "some kill points caught a request mid-flight" true
                  (!discards > 0))));
  ]

(* ------------------------------------------------------------------ *)
(* Durable parallel serving (--workers 4) *)

(* Same knobs as the sequential soak, widened to a 4-slot pool driven
   by 4 worker domains.  config_digest excludes [workers], so journals
   written here also recover under any worker count (and vice versa). *)
let par_config = { soak_config with Server.pool_size = 4; workers = 4 }

(* Run [lines] through the real channel loop — the code path
   --workers N uses, writer domain and all — via temp files.  Returns
   the exit code and the response lines in order (drain line last). *)
let run_session server lines =
  let root = fresh_dir "chan" in
  Fun.protect
    ~finally:(fun () -> rm_rf root)
    (fun () ->
      let in_path = Filename.concat root "in.jsonl" in
      let out_path = Filename.concat root "out.jsonl" in
      let oc = open_out in_path in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      output_string oc "{\"op\":\"shutdown\"}\n";
      close_out oc;
      let ic = open_in in_path in
      let oc = open_out out_path in
      let code =
        Fun.protect
          ~finally:(fun () ->
            close_in_noerr ic;
            close_out_noerr oc)
          (fun () -> Server.run_channels server ic oc)
      in
      ( code,
        String.split_on_char '\n' (read_bytes out_path)
        |> List.filter (fun l -> l <> "") ))

let drop_fields ks (j : Json.t) =
  match j with
  | Json.Obj kvs ->
      Json.Obj (List.filter (fun (k, _) -> not (List.mem k ks)) kvs)
  | j -> j

(* Unique tenant per request: admission decisions cannot depend on
   worker scheduling, so a --workers 4 run must be response-identical
   to the sequential loop — except for which engine slot served it. *)
let uniq_line i =
  let tenant = Printf.sprintf "u%02d" i in
  match i mod 4 with
  | 0 -> run_line ~src:divzero_src ~tenant ~retries:0 ()
  | 1 -> run_line ~src:alloc_src ~tenant ()
  | 2 -> run_line ~src:oob_src ~tenant ()
  | _ -> run_line ~src:good_src ~tenant ()

let par_tests =
  [
    quick "a --workers 4 durable session matches the sequential loop"
      (fun () ->
        with_dir "par-basic" (fun dir ->
            let n = 60 in
            let lines = List.init n (fun i -> uniq_line (i + 1)) in
            let seq_server =
              Server.create ~config:{ par_config with Server.workers = 1 } ()
            in
            let want = List.map (feed seq_server) lines in
            let server =
              durable_server ~config:par_config ~dir ~interval:16 ()
            in
            let code, out = run_session server lines in
            checki "parallel drain is clean" 0 code;
            checki "every request answered, in order" (n + 1)
              (List.length out);
            List.iteri
              (fun i (want, got_line) ->
                let got =
                  match Json.of_string got_line with
                  | Ok j -> j
                  | Error m ->
                      Alcotest.failf "response %d unparsable: %s" (i + 1) m
                in
                (* engine: slot placement is the scheduler's choice;
                   message: sanitizer diagnostics embed absolute heap
                   addresses, which depend on the slot's history *)
                checks
                  (Printf.sprintf "response %d matches the sequential run"
                     (i + 1))
                  (Json.to_string (drop_fields [ "engine"; "message" ] want))
                  (Json.to_string (drop_fields [ "engine"; "message" ] got)))
              (List.combine want (List.filteri (fun i _ -> i < n) out));
            (* the journal the parallel run wrote recovers to exactly
               the live parallel server's state *)
            let live = refpoint_of server (slot_fps server) in
            let recovered, report =
              recover_ok ~ctx:"par-basic" ~config:par_config ~interval:16 dir
            in
            checki "all requests committed" n (jint report "seq");
            checki "nothing discarded on a clean drain" 0
              (jint report "discarded");
            checkb "not torn" true (jget report "torn" = Json.Null);
            checkb "recovered state equals the live parallel server" true
              (refpoint_of recovered (slot_fps recovered) = live);
            close_journal recovered));
    quick "durable parallel sessions require tenant-inflight 1" (fun () ->
        let racy =
          {
            par_config with
            Server.default_budget =
              { Tenant.default_budget with Tenant.max_inflight = 4 };
          }
        in
        with_dir "guard" (fun dir ->
            let server = Server.create ~config:racy () in
            (match Server.enable_durability server ~dir () with
            | Ok () -> Alcotest.fail "racy config accepted"
            | Error d ->
                checks "enable code" "durable.tenant-inflight" d.Diag.code);
            match Server.recover ~config:racy ~dir () with
            | Ok _ -> Alcotest.fail "racy recover accepted"
            | Error d ->
                checks "recover code" "durable.tenant-inflight" d.Diag.code));
    quick "recovering a journal-less directory names what is missing"
      (fun () ->
        with_dir "empty" (fun dir ->
            match Server.recover ~config:par_config ~dir () with
            | Ok _ -> Alcotest.fail "recovered from an empty dir"
            | Error d ->
                checks "code" "recover.no-journal" d.Diag.code;
                let contains needle msg =
                  let ln = String.length needle and lm = String.length msg in
                  let rec scan i =
                    i + ln <= lm
                    && (String.sub msg i ln = needle || scan (i + 1))
                  in
                  scan 0
                in
                checkb "message explains what is missing" true
                  (contains "holds no journal" d.Diag.message)));
  ]

(* The parallel kill-point matrix.  Scheduling decides which slot
   serves which request, so unlike the sequential matrix there is no
   precomputed per-commit reference — instead every assertion is
   anchored to the run itself: the committed seq at each event, the
   live quiesced state captured at every checkpoint barrier, and
   byte-identical double recoveries (replay is deterministic given the
   journal, whatever schedule produced it). *)
let par_matrix_tests =
  [
    quick "recovery is exact at every kill point of a --workers 4 soak"
      (fun () ->
        with_dir "par-matrix" (fun dir ->
            let snap_root = fresh_dir "par-matrix-snaps" in
            Fun.protect
              ~finally:(fun () -> rm_rf snap_root)
              (fun () ->
                let requests = 200 in
                let committed_at = Hashtbl.create 1024 in
                let live_at_barrier = Hashtbl.create 32 in
                let journal = ref None in
                let server_ref = ref None in
                let on_event n =
                  let d =
                    Filename.concat snap_root (Printf.sprintf "evt-%04d" n)
                  in
                  copy_dir dir d;
                  let committed =
                    match !journal with
                    | Some (j : Durable.t) -> j.Durable.committed
                    | None -> 0
                  in
                  Hashtbl.replace committed_at n committed;
                  (* a checkpoint's temp file exists only between its
                     write and its rename — i.e. exactly at the
                     temp-write event, where the dispatcher is
                     gate-blocked and every worker has drained, so the
                     live state is the committed prefix and safe to
                     read from this (writer) domain *)
                  let tmp =
                    Filename.concat dir
                      (Printf.sprintf "ckpt-%010d.tmp" committed)
                  in
                  match !server_ref with
                  | Some sv when Sys.file_exists tmp ->
                      Hashtbl.replace live_at_barrier committed
                        (refpoint_of sv (slot_fps sv))
                  | _ -> ()
                in
                let server = Server.create ~config:par_config () in
                server_ref := Some server;
                (match
                   Server.enable_durability server ~dir ~interval:16
                     ~on_event ()
                 with
                | Ok () -> ()
                | Error d ->
                    Alcotest.failf "enable_durability failed: %s" d.Diag.code);
                journal := server.Server.journal;
                let lines =
                  List.init requests (fun i -> soak_line (i + 1))
                in
                let code, out = run_session server lines in
                checki "the parallel soak drains clean" 0 code;
                checki "every soak request answered" (requests + 1)
                  (List.length out);
                let events =
                  (Option.get server.Server.journal).Durable.events
                in
                checkb "the soak produced a real event stream" true
                  (events > 2 * requests);
                let discards = ref 0 and max_discard = ref 0 in
                for n = 1 to events do
                  let ctx = Printf.sprintf "event %d" n in
                  let d =
                    Filename.concat snap_root (Printf.sprintf "evt-%04d" n)
                  in
                  match Server.recover ~config:par_config ~dir:d () with
                  | Error e when e.Diag.code = "recover.no-checkpoint" ->
                      checki (ctx ^ ": unrecoverable only at commit 0") 0
                        (Hashtbl.find committed_at n);
                      checkb (ctx ^ ": and only without a checkpoint") false
                        (Array.exists
                           (fun f ->
                             String.length f >= 5
                             && String.sub f 0 5 = "ckpt-"
                             && not (Filename.check_suffix f ".tmp"))
                           (Sys.readdir d))
                  | Error e ->
                      Alcotest.failf "%s: recovery failed: %s" ctx e.Diag.code
                  | Ok (recovered, report) ->
                      let k = jint report "seq" in
                      (* zero committed requests lost, zero uncommitted
                         replayed *)
                      checki (ctx ^ ": recovers the committed seq")
                        (Hashtbl.find committed_at n)
                        k;
                      checki (ctx ^ ": served ties out") k
                        recovered.Server.served;
                      (* commits land in response order, so one slow
                         request keeps every later dispatch's begin
                         open — but the dispatcher quiesces every
                         [interval] mutating dispatches, which bounds
                         the open set *)
                      let discarded = jint report "discarded" in
                      checkb
                        (ctx ^ ": discards bounded by the barrier interval")
                        true
                        (discarded >= 0 && discarded <= 16);
                      discards := !discards + discarded;
                      if discarded > !max_discard then
                        max_discard := discarded;
                      checkb (ctx ^ ": consistent snapshots are never torn")
                        true
                        (jget report "torn" = Json.Null);
                      (* at (and around) checkpoint barriers the live
                         quiesced state was captured: recovery must
                         reproduce tenants and per-slot fingerprints
                         byte-identically *)
                      (match Hashtbl.find_opt live_at_barrier k with
                      | Some rp ->
                          checki (ctx ^ ": served at the barrier")
                            rp.rp_served recovered.Server.served;
                          checkb
                            (ctx
                           ^ ": tenants byte-identical to the live run")
                            true
                            (List.map Tenant.snapshot
                               (Tenant.all recovered.Server.tenants)
                            = rp.rp_tenants);
                          Array.iteri
                            (fun id fp ->
                              checks
                                (Printf.sprintf "%s: slot %d fingerprint"
                                   ctx id)
                                fp (slot_fp recovered id))
                            rp.rp_fps
                      | None -> ());
                      (* replay determinism: recovering the same
                         snapshot twice lands byte-identically *)
                      if n mod 29 = 0 then begin
                        let again, report2 =
                          recover_ok ~ctx ~config:par_config d
                        in
                        checki (ctx ^ ": double recovery, same seq") k
                          (jint report2 "seq");
                        checkb (ctx ^ ": double recovery is deterministic")
                          true
                          (refpoint_of again (slot_fps again)
                          = refpoint_of recovered (slot_fps recovered));
                        close_journal again
                      end;
                      close_journal recovered
                done;
                (* the final pristine journal recovers to the drained
                   live server exactly *)
                let live = refpoint_of server (slot_fps server) in
                let final, freport =
                  recover_ok ~ctx:"final" ~config:par_config dir
                in
                checki "final: all commits recovered" requests
                  (jint freport "seq");
                checkb "final: state equals the live drained server" true
                  (refpoint_of final (slot_fps final) = live);
                close_journal final;
                checkb "some kill points caught requests mid-flight" true
                  (!discards > 0);
                checkb "some kill points caught interleaved open begins"
                  true (!max_discard >= 2))));
  ]

(* ------------------------------------------------------------------ *)
(* Adversarial corruption sweep over a multi-generation parallel
   journal: interleaved begin/end records from a --workers 4 run,
   damaged one byte or one truncation at a time.  Every mutation must
   yield a structured recover.* refusal or a clean degradation to a
   committed prefix — never a crash, a hang, or silent acceptance. *)

let sweep_tests =
  [
    quick "every corrupted journal recovers structured or refuses cleanly"
      (fun () ->
        with_dir "sweep" (fun dir ->
            let n = 45 in
            let lines =
              List.init n (fun i ->
                  let tenant = Printf.sprintf "c%02d" (i + 1) in
                  if (i + 1) mod 3 = 0 then
                    run_line ~src:divzero_src ~tenant ~retries:0 ()
                  else run_line ~src:good_src ~tenant ())
            in
            let server =
              durable_server ~config:par_config ~dir ~interval:8 ()
            in
            let code, _ = run_session server lines in
            checki "the sweep soak drains clean" 0 code;
            let pristine = dir ^ ".pristine" in
            copy_dir dir pristine;
            Fun.protect
              ~finally:(fun () -> rm_rf pristine)
              (fun () ->
                (* deterministic generation layout: checkpoints landed
                   at 8..40; the rotation at 40 keeps generation 32 as
                   the degradation target *)
                List.iter
                  (fun f ->
                    checkb (f ^ " survives rotation") true
                      (Sys.file_exists (Filename.concat pristine f)))
                  [
                    "ckpt-0000000040";
                    "ckpt-0000000032";
                    "wal-0000000040.log";
                    "wal-0000000032.log";
                  ];
                let recover_outcome name f =
                  let d = dir ^ "." ^ name in
                  copy_dir pristine d;
                  Fun.protect
                    ~finally:(fun () -> rm_rf d)
                    (fun () ->
                      f d;
                      match Server.recover ~config:par_config ~dir:d () with
                      | Ok (s, report) ->
                          let seq = jint report "seq" in
                          let torn = jget report "torn" <> Json.Null in
                          close_journal s;
                          `Recovered (seq, torn, report)
                      | Error e ->
                          checkb
                            (name
                           ^ ": refusal is a structured recover.* diag")
                            true
                            (String.length e.Diag.code >= 8
                            && String.sub e.Diag.code 0 8 = "recover.");
                          `Refused e.Diag.code
                      | exception e ->
                          Alcotest.failf "%s: recovery raised %s" name
                            (Printexc.to_string e))
                in
                let newest_wal = "wal-0000000040.log" in
                let prev_wal = "wal-0000000032.log" in
                let wal_len =
                  String.length
                    (read_bytes (Filename.concat pristine newest_wal))
                in
                (* bit flips across the newest generation: each must
                   surface as a torn tail or a shorter committed
                   prefix, never be silently accepted *)
                let off = ref 1 in
                while !off < wal_len do
                  let o = !off in
                  (match
                     recover_outcome
                       (Printf.sprintf "flip-%d" o)
                       (fun d ->
                         let p = Filename.concat d newest_wal in
                         write_bytes p (flip_byte (read_bytes p) o))
                   with
                  | `Recovered (seq, torn, _) ->
                      checkb
                        (Printf.sprintf "flip at %d is not silently accepted"
                           o)
                        true
                        (torn || seq < n)
                  | `Refused _ -> ());
                  off := !off + 97
                done;
                (* flips in the previous generation are invisible to a
                   recovery that loads the newest checkpoint *)
                (match
                   recover_outcome "flip-prev-gen" (fun d ->
                       let p = Filename.concat d prev_wal in
                       write_bytes p (flip_byte (read_bytes p) 40))
                 with
                | `Recovered (seq, torn, _) ->
                    checki "prev-gen flip: full recovery" n seq;
                    checkb "prev-gen flip: not torn" false torn
                | `Refused code ->
                    Alcotest.failf "prev-gen flip refused: %s" code);
                (* truncation sweep: any cut of the newest WAL lands on
                   a committed prefix at or past the barrier *)
                List.iter
                  (fun frac ->
                    let len = wal_len * frac / 100 in
                    match
                      recover_outcome
                        (Printf.sprintf "trunc-%d" frac)
                        (fun d ->
                          let p = Filename.concat d newest_wal in
                          write_bytes p (String.sub (read_bytes p) 0 len))
                    with
                    | `Recovered (seq, _, _) ->
                        checkb
                          (Printf.sprintf
                             "trunc %d%%: lands on a committed prefix" frac)
                          true
                          (seq >= 40 && seq <= n)
                    | `Refused code ->
                        Alcotest.failf
                          "trunc %d%%: refused (%s) despite an intact \
                           checkpoint"
                          frac code)
                  [ 3; 17; 42; 71; 89; 99 ];
                (* a flipped newest checkpoint degrades exactly one
                   barrier and still replays everything *)
                (match
                   recover_outcome "bad-ckpt" (fun d ->
                       let p = Filename.concat d "ckpt-0000000040" in
                       let b = read_bytes p in
                       write_bytes p (flip_byte b (String.length b / 2)))
                 with
                | `Recovered (seq, torn, report) ->
                    checki "bad ckpt: fell back one barrier" 32
                      (jint report "barrier");
                    checki "bad ckpt: still recovers everything" n seq;
                    checkb "bad ckpt: not torn" false torn;
                    checkb "bad ckpt: skip names the file" true
                      (match jget report "skipped_checkpoints" with
                      | Json.List (Json.Obj kvs :: _) ->
                          List.assoc_opt "file" kvs
                          = Some (Json.Str "ckpt-0000000040")
                      | _ -> false)
                | `Refused code ->
                    Alcotest.failf "bad ckpt refused: %s" code);
                (* newest checkpoint flipped AND the fallback
                   generation truncated: still structured — either a
                   recover.* refusal or a bounded committed prefix *)
                (match
                   recover_outcome "bad-ckpt-torn-prev" (fun d ->
                       let p = Filename.concat d "ckpt-0000000040" in
                       let b = read_bytes p in
                       write_bytes p (flip_byte b (String.length b - 7));
                       let w = Filename.concat d prev_wal in
                       let wb = read_bytes w in
                       write_bytes w
                         (String.sub wb 0
                            (String.length wb - (String.length wb / 3))))
                 with
                | `Recovered (seq, _, report) ->
                    checki "combo: fell back one barrier" 32
                      (jint report "barrier");
                    checkb "combo: a committed prefix at most" true
                      (seq <= n)
                | `Refused _ -> ());
                (* both checkpoint generations flipped: a structured
                   refusal, not a crash *)
                match
                  recover_outcome "no-ckpt" (fun d ->
                      List.iter
                        (fun f ->
                          let p = Filename.concat d f in
                          let b = read_bytes p in
                          write_bytes p (flip_byte b 11))
                        [ "ckpt-0000000040"; "ckpt-0000000032" ])
                with
                | `Recovered _ ->
                    Alcotest.fail "recovered from two bad checkpoints"
                | `Refused code ->
                    checks "no-ckpt code" "recover.no-checkpoint" code)))
  ]

let () =
  Alcotest.run "durable"
    [
      ("engine-checkpoints", engine_tests);
      ("journal-plumbing", plumbing_tests);
      ("torn-tails", torn_tests);
      ("kill-point-matrix", matrix_tests);
      ("durable-parallel", par_tests);
      ("parallel-kill-points", par_matrix_tests);
      ("corruption-sweep", sweep_tests);
    ]
