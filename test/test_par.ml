(* Multicore sharding: the tpool primitives, engine isolation across
   domains, and the serve pool's concurrent checkout/recycle discipline.

   The load-bearing property everywhere here is determinism: engines on
   separate domains must produce byte-identical outputs, diagnostics,
   and fingerprints to a sequential run, because nothing an engine
   touches is shared. *)

let quick = Harness.quick
let checks = Alcotest.(check string)
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Tpool primitives *)

let tpool_tests =
  [
    quick "chan: fifo order, close semantics" (fun () ->
        let c = Tpool.Chan.create () in
        for i = 1 to 10 do
          Tpool.Chan.send c i
        done;
        for i = 1 to 10 do
          checki "fifo" i (Option.get (Tpool.Chan.recv c))
        done;
        Tpool.Chan.close c;
        checkb "drained channel yields None" true (Tpool.Chan.recv c = None);
        checkb "send after close raises" true
          (match Tpool.Chan.send c 11 with
          | exception Invalid_argument _ -> true
          | () -> false));
    quick "chan: capacity bounds the queue across domains" (fun () ->
        let c = Tpool.Chan.create ~capacity:2 () in
        let consumer =
          Domain.spawn (fun () ->
              let rec go acc =
                match Tpool.Chan.recv c with
                | None -> List.rev acc
                | Some v -> go (v :: acc)
              in
              go [])
        in
        for i = 1 to 50 do
          Tpool.Chan.send c i
        done;
        Tpool.Chan.close c;
        let got = Domain.join consumer in
        checki "all delivered" 50 (List.length got);
        checkb "in order" true (got = List.init 50 (fun i -> i + 1)));
    quick "pool: map returns results in input order" (fun () ->
        let items = Array.init 100 (fun i -> i) in
        let out =
          Tpool.Pool.with_pool ~domains:4 (fun p ->
              Tpool.Pool.map p (fun i -> i * i) items)
        in
        checkb "ordered" true (out = Array.init 100 (fun i -> i * i)));
    quick "pool: map_workers hands out exclusive worker indices" (fun () ->
        let domains = 4 in
        let per_worker = Array.init domains (fun _ -> Atomic.make 0) in
        let busy = Array.init domains (fun _ -> Atomic.make false) in
        let overlap = Atomic.make false in
        let out =
          Tpool.Pool.with_pool ~domains (fun p ->
              Tpool.Pool.map_workers p
                (fun ~worker i ->
                  if Atomic.exchange busy.(worker) true then
                    Atomic.set overlap true;
                  Atomic.incr per_worker.(worker);
                  let r = i + 1 in
                  Atomic.set busy.(worker) false;
                  r)
                (Array.init 200 (fun i -> i)))
        in
        checkb "no two jobs share a worker slot at once" false
          (Atomic.get overlap);
        checki "every job ran exactly once" 200
          (Array.fold_left (fun a c -> a + Atomic.get c) 0 per_worker);
        checkb "results ordered" true
          (out = Array.init 200 (fun i -> i + 1)));
    quick "pool: a raising job surfaces on the caller, pool survives"
      (fun () ->
        Tpool.Pool.with_pool ~domains:2 (fun p ->
            checkb "exception re-raised" true
              (match
                 Tpool.Pool.map p
                   (fun i -> if i = 3 then failwith "boom" else i)
                   (Array.init 8 (fun i -> i))
               with
              | exception Failure _ -> true
              | _ -> false);
            (* the pool is still serviceable after the failed batch *)
            let out = Tpool.Pool.map p (fun i -> i * 2) [| 1; 2; 3 |] in
            checkb "pool survives" true (out = [| 2; 4; 6 |])));
  ]

(* ------------------------------------------------------------------ *)
(* The barrier gate (the durable server's quiesce rendezvous) *)

let gate_tests =
  [
    quick "gate: await blocks until the matching release" (fun () ->
        let g = Tpool.Gate.create () in
        let tk = Tpool.Gate.ticket g in
        let released = Atomic.make false in
        let d =
          Domain.spawn (fun () ->
              Atomic.set released true;
              Tpool.Gate.release g)
        in
        Tpool.Gate.await g tk;
        checkb "release happened before await returned" true
          (Atomic.get released);
        Domain.join d;
        (* a stale ticket is already satisfied: await must not block *)
        Tpool.Gate.await g tk);
    quick "gate: barrier rendezvous round-trips through a channel"
      (fun () ->
        (* the durable server's writer-domain shape: the dispatcher
           takes a ticket, sends a barrier message, and awaits; the
           writer releases once everything queued before the barrier
           has been processed.  The gate's mutex is the happens-before
           edge that lets the dispatcher read writer-side state. *)
        let c : int Tpool.Chan.t = Tpool.Chan.create () in
        let g = Tpool.Gate.create () in
        let processed = ref 0 in
        let writer =
          Domain.spawn (fun () ->
              let rec loop () =
                match Tpool.Chan.recv c with
                | None -> ()
                | Some -1 ->
                    Tpool.Gate.release g;
                    loop ()
                | Some _ ->
                    incr processed;
                    loop ()
              in
              loop ())
        in
        for round = 1 to 50 do
          for _ = 1 to 4 do
            Tpool.Chan.send c 0
          done;
          let tk = Tpool.Gate.ticket g in
          Tpool.Chan.send c (-1);
          Tpool.Gate.await g tk;
          checki "queue drained at the barrier" (round * 4) !processed
        done;
        Tpool.Chan.close c;
        Domain.join writer);
  ]

(* ------------------------------------------------------------------ *)
(* Engine isolation across domains *)

(* One corpus item: build a fresh checked engine, run the source, and
   reduce the run to the triple that must be reproducible — captured
   output, diagnostic (code + message, which embeds heap addresses for
   san traps), and the engine fingerprint after the run. *)
let run_item (file, src) : string * string * string =
  let eng = Terrastd.create ~checked:true ~mem_bytes:(32 * 1024 * 1024) () in
  let out, result = Terra.Engine.run_capture_protected eng ~file src in
  let diag =
    match result with
    | Ok _ -> "ok"
    | Error d -> d.Terra.Diag.code ^ ": " ^ d.Terra.Diag.message
  in
  (out, diag, Terra.Engine.fingerprint eng)

let corpus () =
  let golden name = (name, Harness.read_file (Harness.golden name)) in
  [
    ( "good.t",
      "x = 0 for i=1,10 do x = x + i end print(x)\n\
       terra f(n : int32) return n * 2 + 1 end print(f(20))" );
    ("rand.t", "for i=1,4 do print(math.random(1000)) end");
    ( "trap.t",
      "terra d(n : int32) : int32 return 10 / n end print(d(0))" );
    golden "double_free.t";
    golden "use_after_free.t";
    golden "invalid_free.t";
    golden "leak.t";
  ]

let stress_tests =
  [
    quick "4 domains of engines match sequential runs byte for byte"
      (fun () ->
        let corpus = corpus () in
        (* sequential reference triples, one fresh engine per item *)
        let expected = List.map run_item corpus in
        (* the same corpus three times over, drained by 4 domains with a
           fresh engine per job; dynamic scheduling means every
           interleaving of engine construction and execution is fair
           game, and none of it may show up in the results *)
        let jobs =
          Array.of_list (corpus @ corpus @ corpus)
        in
        let got =
          Tpool.Pool.with_pool ~domains:4 (fun p ->
              Tpool.Pool.map p run_item jobs)
        in
        let expected = Array.of_list (expected @ expected @ expected) in
        Array.iteri
          (fun i (out, diag, fp) ->
            let eout, ediag, efp = expected.(i) in
            let file, _ = jobs.(i) in
            checks (file ^ " output") eout out;
            checks (file ^ " diagnostic") ediag diag;
            checks (file ^ " fingerprint") efp fp)
          got);
    quick "math.random: interleaved engines draw independent streams"
      (fun () ->
        (* satellite regression: the PRNG seed lives in per-interpreter
           state, so two engines alternating draws behave exactly like
           two engines running alone *)
        let draw = "print(math.random(32768))" in
        let solo () =
          let eng = Terrastd.create () in
          List.init 6 (fun _ ->
              fst (Terra.Engine.run_capture eng draw))
        in
        let expected = solo () in
        let a = Terrastd.create () and b = Terrastd.create () in
        let got_a = ref [] and got_b = ref [] in
        for _ = 1 to 6 do
          got_a := fst (Terra.Engine.run_capture a draw) :: !got_a;
          got_b := fst (Terra.Engine.run_capture b draw) :: !got_b
        done;
        checkb "engine A matches a solo engine" true
          (List.rev !got_a = expected);
        checkb "engine B matches a solo engine" true
          (List.rev !got_b = expected));
  ]

(* ------------------------------------------------------------------ *)
(* Serve pool under concurrency *)

let pool_tests =
  [
    quick "checkout/recycle hammered from 4 domains never double-issues"
      (fun () ->
        let made = Atomic.make 0 in
        let make () =
          Atomic.incr made;
          Terra.Engine.create ~mem_bytes:(8 * 1024 * 1024) ()
        in
        let pool = Serve.Pool.create ~make ~size:3 ~recycle_after:5 in
        let held = Array.init 3 (fun _ -> Atomic.make false) in
        let double_issue = Atomic.make false in
        let per_domain = 20 in
        let domains =
          List.init 4 (fun _ ->
              Domain.spawn (fun () ->
                  for i = 1 to per_domain do
                    let s = Serve.Pool.checkout pool in
                    if Atomic.exchange held.(s.Serve.Pool.id) true then
                      Atomic.set double_issue true;
                    (* touch the engine while holding the slot: the
                       mutex hand-off must make this race-free *)
                    ignore
                      (Terra.Engine.run_capture s.Serve.Pool.eng
                         (Printf.sprintf "x = %d" i));
                    Atomic.set held.(s.Serve.Pool.id) false;
                    Serve.Pool.checkin pool s ~anomaly:None
                  done))
        in
        List.iter Domain.join domains;
        checkb "no slot was ever checked out twice" false
          (Atomic.get double_issue);
        let total =
          Array.fold_left
            (fun a (s : Serve.Pool.slot) -> a + s.Serve.Pool.total)
            0 pool.Serve.Pool.slots
        in
        checki "every checkout was booked" (4 * per_domain) total;
        (* recycle_after=5 over 80 requests on 3 slots forces plenty of
           in-flight rebuilds; each one made a fresh engine *)
        checkb "wear recycling happened under contention" true
          (Atomic.get made > 3));
    quick "blocking checkout: more domains than engines still completes"
      (fun () ->
        let pool =
          Serve.Pool.create
            ~make:(fun () ->
              Terra.Engine.create ~mem_bytes:(8 * 1024 * 1024) ())
            ~size:1 ~recycle_after:1000
        in
        let domains =
          List.init 4 (fun d ->
              Domain.spawn (fun () ->
                  for _ = 1 to 5 do
                    let s = Serve.Pool.checkout pool in
                    ignore
                      (Terra.Engine.run_capture s.Serve.Pool.eng
                         (Printf.sprintf "y = %d" d));
                    Serve.Pool.checkin pool s ~anomaly:None
                  done))
        in
        List.iter Domain.join domains;
        checki "all 20 requests went through the single engine" 20
          pool.Serve.Pool.slots.(0).Serve.Pool.total);
  ]

(* ------------------------------------------------------------------ *)
(* Compilation cache under domain concurrency *)

module Json = Tprof.Json
module Server = Serve.Server
module Ccache = Terra.Ccache
module Blobio = Terra.Blobio

let read_lines path =
  let ic = open_in_bin path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  List.rev !lines

(* Serve responses modulo scheduling: which pool slot answered is the
   one legitimate difference between --workers 1 and --workers 4. *)
let drop_engine line =
  match Json.of_string line with
  | Error m -> Alcotest.failf "unparseable response %S: %s" line m
  | Ok (Json.Obj fields) ->
      Json.to_string (Json.Obj (List.filter (fun (k, _) -> k <> "engine") fields))
  | Ok j -> Json.to_string j

let ccache_tests =
  [
    quick "4 workers hammering one cache dir match the sequential run"
      (fun () ->
        let scratch = Filename.temp_file "terra-par-ccache" "" in
        Sys.remove scratch;
        Sys.mkdir scratch 0o755;
        let rec rm_rf p =
          if Sys.file_exists p then
            if Sys.is_directory p then begin
              Array.iter
                (fun f -> rm_rf (Filename.concat p f))
                (Sys.readdir p);
              Sys.rmdir p
            end
            else Sys.remove p
        in
        Fun.protect
          ~finally:(fun () -> rm_rf scratch)
          (fun () ->
            (* 6 distinct programs, each requested 3 times: every domain
               races lookups, stores, and hits on the same directory *)
            let src i =
              Printf.sprintf
                "terra f(n : int32) : int32 return n * 2 + %d end print(f(%d))"
                i i
            in
            let reqs =
              List.concat_map
                (fun round ->
                  List.init 6 (fun i ->
                      (* one tenant per request: the default inflight
                         budget must not serialize the 4-domain race *)
                      Json.to_string
                        (Json.Obj
                           [
                             ("src", Json.Str (src i));
                             ( "tenant",
                               Json.Str (Printf.sprintf "t%d-%d" round i) );
                           ])))
                [ 0; 1; 2 ]
            in
            let in_path = Filename.concat scratch "in.jsonl" in
            let oc = open_out in_path in
            List.iter
              (fun l ->
                output_string oc l;
                output_char oc '\n')
              reqs;
            output_string oc "{\"op\":\"shutdown\"}\n";
            close_out oc;
            let run_serve ~workers ~cache_dir =
              let cc = Ccache.create ~dir:cache_dir () in
              let config =
                {
                  Server.default_config with
                  pool_size = 4;
                  recycle_after = 1000;
                  checked = true;
                  mem_bytes = Some (32 * 1024 * 1024);
                  workers;
                  cache = Some cc;
                }
              in
              let s = Server.create ~config () in
              let out_path =
                Filename.concat scratch
                  (Printf.sprintf "out-w%d-%s.jsonl" workers
                     (Filename.basename cache_dir))
              in
              let ic = open_in in_path and oc = open_out out_path in
              let code = Server.run_channels s ic oc in
              close_in ic;
              close_out oc;
              checki "clean exit" 0 code;
              (List.map drop_engine (read_lines out_path), Ccache.counts cc)
            in
            let dir1 = Filename.concat scratch "cache1" in
            let dir4 = Filename.concat scratch "cache4" in
            let seq, c1 = run_serve ~workers:1 ~cache_dir:dir1 in
            let par, c4 = run_serve ~workers:4 ~cache_dir:dir4 in
            (* byte-identical reports, response by response *)
            checki "same response count" (List.length seq) (List.length par);
            List.iteri
              (fun i (a, b) ->
                checks (Printf.sprintf "response %d" i) a b)
              (List.combine seq par);
            (* counter tie-out: every request is exactly one lookup, and
               every miss stored; races only shift the hit/miss split *)
            checki "seq: one lookup per request" 18
              (c1.Ccache.c_hits + c1.Ccache.c_misses);
            checki "seq: misses = distinct programs" 6 c1.Ccache.c_misses;
            checki "seq: stores = misses" c1.Ccache.c_misses
              c1.Ccache.c_stores;
            checki "par: one lookup per request" 18
              (c4.Ccache.c_hits + c4.Ccache.c_misses);
            checki "par: stores = misses" c4.Ccache.c_misses
              c4.Ccache.c_stores;
            checkb "par: every program missed at least once" true
              (c4.Ccache.c_misses >= 6);
            checki "seq: no bad entries" 0 c1.Ccache.c_bad_entries;
            checki "par: no bad entries" 0 c4.Ccache.c_bad_entries;
            (* no torn entries: last-writer-wins left 6 whole files *)
            let entries dir =
              List.sort compare
                (List.filter
                   (fun f -> Filename.check_suffix f ".tcc")
                   (Array.to_list (Sys.readdir dir)))
            in
            checkb "same entry set as sequential" true
              (entries dir1 = entries dir4);
            List.iter
              (fun f ->
                let ic = open_in_bin (Filename.concat dir4 f) in
                Fun.protect
                  ~finally:(fun () -> close_in_noerr ic)
                  (fun () ->
                    match
                      Blobio.read_framed ic ~magic:Ccache.entry_magic
                    with
                    | Ok payload ->
                        let e =
                          (Marshal.from_string payload 0 : Ccache.entry)
                        in
                        checki (f ^ ": version") Ccache.format_version
                          e.Ccache.e_version;
                        checks (f ^ ": key echo = filename")
                          (Filename.chop_suffix f ".tcc")
                          e.Ccache.e_key
                    | Error m -> Alcotest.failf "torn entry %s: %s" f m))
              (entries dir4);
            (* the hammered dir is fully warm for a fresh fleet *)
            let warm, cw = run_serve ~workers:4 ~cache_dir:dir4 in
            checkb "warm fleet reports identically" true (warm = par);
            checki "warm fleet compiles nothing" 0 cw.Ccache.c_misses;
            checki "warm fleet hits everything" 18 cw.Ccache.c_hits));
  ]

let () =
  Alcotest.run "par"
    [
      ("tpool", tpool_tests);
      ("gate", gate_tests);
      ("stress", stress_tests);
      ("pool", pool_tests);
      ("ccache", ccache_tests);
    ]
