(* The paper example programs under examples/programs/ are executed
   through the engine and diffed against checked-in expected output, so
   the demos stay working. (They were previously mangled by dune's cram
   runner and never actually run.) *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* cwd at test time is _build/default/test; (deps ...) in test/dune stages
   the sources into the build tree at their original relative paths *)
let program name = Filename.concat "../examples/programs" name
let expected name = Filename.concat "expected" name

let check_program src_file expected_file () =
  let src = read_file (program src_file) in
  let e = Terrastd.create ~mem_bytes:(64 * 1024 * 1024) () in
  match Terra.Engine.run_capture_protected e ~file:src_file src with
  | out, Ok _ ->
      Alcotest.(check string) src_file (read_file (expected expected_file)) out
  | _, Error d -> Alcotest.failf "%s: %s" src_file (Terra.Diag.to_string d)

let () =
  Alcotest.run "programs"
    [
      ( "examples",
        [
          Alcotest.test_case "mandelbrot.t" `Quick
            (check_program "mandelbrot.t" "mandelbrot.expected");
          Alcotest.test_case "paper_surface.t" `Quick
            (check_program "paper_surface.t" "paper_surface.expected");
        ] );
    ]
