(* The paper example programs under examples/programs/ are executed
   through the engine and diffed against checked-in expected output, so
   the demos stay working. (They were previously mangled by dune's cram
   runner and never actually run.) *)

let () =
  Alcotest.run "programs"
    [
      ( "examples",
        [
          Alcotest.test_case "mandelbrot.t" `Quick
            (Harness.run_expect_file "mandelbrot.t" "mandelbrot.expected");
          Alcotest.test_case "paper_surface.t" `Quick
            (Harness.run_expect_file "paper_surface.t"
               "paper_surface.expected");
        ] );
    ]
