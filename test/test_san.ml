(* TerraSan: the memory-safety sanitizer and fault-injection harness.

   Three layers are exercised: the shadow-mapped allocator directly
   (precise violation records), the engine boundary (golden buggy
   programs produce san.* diagnostics under checked execution and still
   run — or trap coarsely — unchecked), and Lua fault isolation (pcall
   observes every sanitizer and injected-fault class and the engine
   keeps working afterwards). *)

module Mem = Tvm.Mem
module Alloc = Tvm.Alloc
module Shadow = Tvm.Shadow
module Fault = Tvm.Fault
open Terra

let checks = Alcotest.(check string)
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let quick = Harness.quick

let checked_alloc ?quarantine () =
  let mem = Mem.create () in
  let a = Alloc.create ~checked:true ?quarantine mem in
  (mem, a)

(* Run f and return the sanitizer violation it must raise. *)
let expect_violation name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected a sanitizer violation" name
  | exception Shadow.Violation v -> v

(* ------------------------------------------------------------------ *)
(* Shadow-mapped allocator *)

let alloc_tests =
  [
    quick "store past the end hits the redzone" (fun () ->
        let mem, a = checked_alloc () in
        let p = Alloc.malloc a 40 in
        (* the last in-bounds i32 is fine *)
        Mem.set_i32 mem (p + 36) 7l;
        let v =
          expect_violation "overflow" (fun () -> Mem.set_i32 mem (p + 40) 7l)
        in
        checks "kind" "san.heap-overflow" (Shadow.kind_code v.Shadow.vkind);
        checki "access size" 4 v.Shadow.vlen;
        checkb "owning block recorded" true (v.Shadow.vblock = Some (p, 40)));
    quick "one-byte overrun is caught despite rounding" (fun () ->
        (* 17 bytes rounds to 32, but the slack is poisoned as redzone *)
        let mem, a = checked_alloc () in
        let p = Alloc.malloc a 17 in
        Mem.set_u8 mem (p + 16) 1;
        let v =
          expect_violation "overrun" (fun () -> Mem.set_u8 mem (p + 17) 1)
        in
        checks "kind" "san.heap-overflow" (Shadow.kind_code v.Shadow.vkind));
    quick "load through a dangling pointer" (fun () ->
        let mem, a = checked_alloc () in
        let p = Alloc.malloc a 16 in
        Mem.set_i32 mem p 1l;
        Alloc.free a p;
        let v = expect_violation "uaf" (fun () -> Mem.get_i32 mem p) in
        checks "kind" "san.use-after-free" (Shadow.kind_code v.Shadow.vkind);
        checkb "names the freed block" true (v.Shadow.vblock = Some (p, 16)));
    quick "double free" (fun () ->
        let _, a = checked_alloc () in
        let p = Alloc.malloc a 16 in
        Alloc.free a p;
        let v = expect_violation "df" (fun () -> Alloc.free a p) in
        checkb "kind" true (v.Shadow.vkind = Shadow.Double_free);
        checks "code" "san.double-free" (Shadow.kind_code v.Shadow.vkind));
    quick "free of an interior pointer" (fun () ->
        let _, a = checked_alloc () in
        let p = Alloc.malloc a 16 in
        let v = expect_violation "inv" (fun () -> Alloc.free a (p + 4)) in
        checkb "kind" true (v.Shadow.vkind = Shadow.Invalid_free);
        checkb "names the enclosing block" true
          (v.Shadow.vblock = Some (p, 16)));
    quick "quarantine keeps freed blocks poisoned" (fun () ->
        (* default (large) quarantine: the block stays Freed *)
        let mem, a = checked_alloc () in
        let p = Alloc.malloc a 32 in
        Alloc.free a p;
        let v = expect_violation "uaf" (fun () -> Mem.get_u8 mem p) in
        checkb "still use-after-free" true
          (v.Shadow.vkind = Shadow.Use_after_free));
    quick "drained quarantine downgrades to oob and recycles" (fun () ->
        (* zero budget: every free drains immediately *)
        let mem, a = checked_alloc ~quarantine:0 () in
        let p = Alloc.malloc a 32 in
        Alloc.free a p;
        let v = expect_violation "stale" (fun () -> Mem.get_u8 mem p) in
        checkb "stale pointer reads as oob" true (v.Shadow.vkind = Shadow.Oob);
        (* the space is genuinely recycled: allocator bookkeeping is empty
           and a fresh allocation still succeeds *)
        checki "nothing live" 0 (Alloc.live_blocks a);
        let q = Alloc.malloc a 32 in
        Mem.set_u8 mem q 1;
        checki "fresh block usable" 1 (Mem.get_u8 mem q));
    quick "freeing a drained pointer is invalid-free, not double-free"
      (fun () ->
        let _, a = checked_alloc ~quarantine:0 () in
        let p = Alloc.malloc a 32 in
        Alloc.free a p;
        let v = expect_violation "stale free" (fun () -> Alloc.free a p) in
        checkb "kind" true (v.Shadow.vkind = Shadow.Invalid_free));
    quick "realloc shrinks in place and re-poisons the slack" (fun () ->
        let mem, a = checked_alloc () in
        let p = Alloc.malloc a 64 in
        Mem.set_i32 mem p 42l;
        let q = Alloc.realloc a p 16 in
        checki "same payload address" p q;
        checki "requested size updated" 16 (Alloc.block_size a p);
        checkb "contents kept" true (Mem.get_i32 mem p = 42l);
        let v =
          expect_violation "slack poisoned" (fun () ->
              Mem.set_u8 mem (p + 20) 1)
        in
        checkb "past new size is overflow" true
          (v.Shadow.vkind = Shadow.Heap_overflow));
    quick "realloc grow copies only the requested bytes" (fun () ->
        let mem, a = checked_alloc () in
        let p = Alloc.malloc a 16 in
        Mem.set_i32 mem p 7l;
        Mem.set_i32 mem (p + 12) 9l;
        let q = Alloc.realloc a p 4096 in
        checkb "moved" true (q <> p);
        checkb "prefix copied" true
          (Mem.get_i32 mem q = 7l && Mem.get_i32 mem (q + 12) = 9l);
        (* the old block is now poisoned *)
        let v = expect_violation "old freed" (fun () -> Mem.get_u8 mem p) in
        checkb "uaf on old block" true
          (v.Shadow.vkind = Shadow.Use_after_free));
    quick "realloc of an invalid pointer (checked)" (fun () ->
        let mem, a = checked_alloc () in
        let v =
          expect_violation "bad realloc" (fun () ->
              Alloc.realloc a (Mem.heap_base mem + 48) 32)
        in
        checkb "kind" true (v.Shadow.vkind = Shadow.Invalid_realloc);
        checks "maps to invalid-free code" "san.invalid-free"
          (Shadow.kind_code v.Shadow.vkind));
    quick "leaks reports requested sizes" (fun () ->
        let _, a = checked_alloc () in
        let p = Alloc.malloc a 40 in
        let _q = Alloc.malloc a 7 in
        Alloc.free a p;
        match List.sort compare (Alloc.leaks a) with
        | [ (_, 7) ] -> ()
        | l -> Alcotest.failf "unexpected leak set (%d entries)" (List.length l));
  ]

(* unchecked-mode satellite fixes ride the same allocator *)
let unchecked_tests =
  [
    quick "realloc of an invalid pointer raises Invalid_realloc" (fun () ->
        let mem = Mem.create () in
        let a = Alloc.create mem in
        let bogus = Mem.heap_base mem + 48 in
        match Alloc.realloc a bogus 32 with
        | _ -> Alcotest.fail "expected Invalid_realloc"
        | exception Alloc.Invalid_realloc addr -> checki "address" bogus addr);
    quick "realloc shrink stays in place and returns the tail" (fun () ->
        let mem = Mem.create () in
        let a = Alloc.create mem in
        let p = Alloc.malloc a 256 in
        Mem.set_i32 mem p 5l;
        let before = Alloc.live_bytes a in
        let q = Alloc.realloc a p 16 in
        checki "in place" p q;
        checkb "contents kept" true (Mem.get_i32 mem p = 5l);
        checkb "bytes returned to the free list" true
          (Alloc.live_bytes a < before));
  ]

(* ------------------------------------------------------------------ *)
(* Mem hardening + fault primitives *)

let mem_fault_tests =
  [
    quick "poisoned byte faults under checked execution" (fun () ->
        let mem, a = checked_alloc () in
        let p = Alloc.malloc a 16 in
        Mem.set_u8 mem p 3;
        (match Mem.shadow mem with
        | Some sh -> Shadow.poison sh p
        | None -> Alcotest.fail "checked mem has no shadow");
        let v = expect_violation "poisoned" (fun () -> Mem.get_u8 mem p) in
        checkb "reads as oob" true (v.Shadow.vkind = Shadow.Oob));
    quick "corrupt_byte silently flips memory when unchecked" (fun () ->
        let mem = Mem.create () in
        let a = Alloc.create mem in
        let p = Alloc.malloc a 16 in
        Mem.set_u8 mem p 3;
        Mem.corrupt_byte mem p;
        checki "bit-flipped value read back" 0xA5 (Mem.get_u8 mem p));
    quick "fail-alloc spec fires on the exact ordinal" (fun () ->
        let f = Fault.create [ Fault.Fail_alloc 3 ] in
        Fault.on_alloc f;
        Fault.on_alloc f;
        (match Fault.on_alloc f with
        | () -> Alcotest.fail "expected Injected"
        | exception Fault.Injected (spec, _) ->
            checks "code" "fault.alloc" (Fault.code spec));
        (* one-shot: the 4th allocation proceeds *)
        Fault.on_alloc f);
    quick "trap-at-step spec fires once at its step" (fun () ->
        let mem = Mem.create () in
        let f = Fault.create [ Fault.Trap_at_step 5 ] in
        checki "armed" 5 (Fault.next_step f);
        Fault.fire_step f mem 4;
        (match Fault.fire_step f mem 5 with
        | () -> Alcotest.fail "expected Injected"
        | exception Fault.Injected (spec, _) ->
            checks "code" "fault.trap" (Fault.code spec));
        Fault.fire_step f mem 6;
        checki "disarmed" max_int (Fault.next_step f));
  ]

(* ------------------------------------------------------------------ *)
(* Golden buggy programs through the engine *)

let engine = Harness.engine
let run_golden = Harness.run_golden

(* checked run must fail with exactly this san.* code, and the code must
   be in the exit-2 (runtime fault) class *)
let checked_fails name code () =
  match run_golden ~checked:true name with
  | _, Ok _ -> Alcotest.failf "%s: expected %s, got Ok" name code
  | _, Error d ->
      checks (name ^ " code") code d.Diag.code;
      checkb (name ^ " exits 2") true (Diag.is_runtime_fault d)

(* unchecked, the same program must behave as stated: run to completion,
   or trip the coarse hardened-allocator trap *)
let unchecked_gives name expect () =
  match (run_golden ~checked:false name, expect) with
  | (_, Ok _), None -> ()
  | (_, Error d), Some code -> checks (name ^ " code") code d.Diag.code
  | (_, Ok _), Some code -> Alcotest.failf "%s: expected %s, got Ok" name code
  | (_, Error d), None ->
      Alcotest.failf "%s: expected Ok, got %s" name (Diag.to_string d)

let golden_tests =
  [
    quick "heap_overflow.t checked"
      (checked_fails "heap_overflow.t" "san.heap-overflow");
    quick "heap_overflow.t unchecked runs"
      (unchecked_gives "heap_overflow.t" None);
    quick "use_after_free.t checked"
      (checked_fails "use_after_free.t" "san.use-after-free");
    quick "use_after_free.t unchecked runs"
      (unchecked_gives "use_after_free.t" None);
    quick "double_free.t checked"
      (checked_fails "double_free.t" "san.double-free");
    quick "double_free.t unchecked traps coarsely"
      (unchecked_gives "double_free.t" (Some "trap.free"));
    quick "invalid_free.t checked"
      (checked_fails "invalid_free.t" "san.invalid-free");
    quick "invalid_free.t unchecked traps coarsely"
      (unchecked_gives "invalid_free.t" (Some "trap.free"));
    quick "leak.t checked: program succeeds, shutdown reports the leak"
      (fun () ->
        match run_golden ~checked:true "leak.t" with
        | e, Ok _ -> (
            match Engine.leak_diag e with
            | Some d ->
                checks "code" "san.leak" d.Diag.code;
                checkb "exit-2 class" true (Diag.is_runtime_fault d);
                checkb "reports the 64 bytes" true
                  (Engine.leak_report e = [ (fst (List.hd (Engine.leak_report e)), 64) ])
            | None -> Alcotest.fail "expected a leak diagnostic")
        | _, Error d -> Alcotest.failf "leak.t: %s" (Diag.to_string d));
    quick "leak.t unchecked is silent" (unchecked_gives "leak.t" None);
    quick "clean program has no leak diagnostic" (fun () ->
        let e = engine ~checked:true () in
        let src =
          {|
            local std = terralib.includec("stdlib.h")
            terra f()
              var p = std.malloc(128)
              std.free(p)
              return 0
            end
            f()
          |}
        in
        match Engine.run_capture_protected e src with
        | _, Ok _ -> checkb "no leak" true (Engine.leak_diag e = None)
        | _, Error d -> Alcotest.failf "clean: %s" (Diag.to_string d));
  ]

(* ------------------------------------------------------------------ *)
(* Lua fault isolation: pcall observes, engine survives *)

(* Wrap a buggy terra call in pcall; print err.code; then prove the
   engine still compiles and runs fresh Terra code. *)
let pcall_recovers name body code () =
  let e = engine ~checked:true () in
  let src =
    Printf.sprintf
      {|
        local std = terralib.includec("stdlib.h")
        %s
        local ok, err = pcall(function() return bug() end)
        print(ok, err.phase, err.code)
        terra fine() return 41 + 1 end
        print(fine())
      |}
      body
  in
  match Engine.run_capture_protected e src with
  | out, Ok _ ->
      checks name (Printf.sprintf "false\trun\t%s\n42\n" code) out
  | _, Error d -> Alcotest.failf "%s: %s" name (Diag.to_string d)

let overflow_body =
  {|terra bug()
      var p = [&int32](std.malloc(40))
      p[10] = 7
      return 0
    end|}

let uaf_body =
  {|terra bug()
      var p = [&int32](std.malloc(16))
      std.free([&uint8](p))
      return p[0]
    end|}

let df_body =
  {|terra bug()
      var p = std.malloc(16)
      std.free(p)
      std.free(p)
      return 0
    end|}

let invfree_body =
  {|terra bug()
      var p = std.malloc(16)
      std.free(p + 4)
      return 0
    end|}

let isolation_tests =
  [
    quick "pcall catches san.heap-overflow"
      (pcall_recovers "overflow" overflow_body "san.heap-overflow");
    quick "pcall catches san.use-after-free"
      (pcall_recovers "uaf" uaf_body "san.use-after-free");
    quick "pcall catches san.double-free"
      (pcall_recovers "double free" df_body "san.double-free");
    quick "pcall catches san.invalid-free"
      (pcall_recovers "invalid free" invfree_body "san.invalid-free");
    quick "pcall catches an injected allocation failure" (fun () ->
        let e = engine ~faults:[ Fault.Fail_alloc 1 ] () in
        let src =
          {|
            local std = terralib.includec("stdlib.h")
            terra bug() return std.malloc(16) end
            local ok, err = pcall(function() return bug() end)
            print(ok, err.code)
            terra fine() return 1 end
            print(fine())
          |}
        in
        (match Engine.run_capture_protected e src with
        | out, Ok _ -> checks "alloc fault" "false\tfault.alloc\n1\n" out
        | _, Error d -> Alcotest.failf "alloc fault: %s" (Diag.to_string d)));
    quick "pcall catches an injected step trap" (fun () ->
        let e = engine () in
        let src =
          {|
            terra spin()
              var s = 0
              for i = 0, 10000 do s = s + i end
              return s
            end
            local ok, err = pcall(function() return spin() end)
            print(ok, err.code)
            terra fine() return 2 end
            print(fine())
          |}
        in
        Engine.inject e (Fault.Trap_at_step 100);
        (match Engine.run_capture_protected e src with
        | out, Ok _ -> checks "step trap" "false\tfault.trap\n2\n" out
        | _, Error d -> Alcotest.failf "step trap: %s" (Diag.to_string d)));
    quick "terralib.issanitized and leakcheck" (fun () ->
        let e = engine ~checked:true () in
        let src =
          {|
            print(terralib.issanitized())
            local std = terralib.includec("stdlib.h")
            terra alloc() return std.malloc(40) end
            local p = alloc()
            print(terralib.leakcheck())
          |}
        in
        (match Engine.run_capture_protected e src with
        | out, Ok _ -> checks "lua hooks" "true\n1\t40\n" out
        | _, Error d -> Alcotest.failf "lua hooks: %s" (Diag.to_string d)));
    quick "issanitized is false unchecked" (fun () ->
        let e = engine () in
        match Engine.run_capture_protected e "print(terralib.issanitized())" with
        | out, Ok _ -> checks "unsanitized" "false\n" out
        | _, Error d -> Alcotest.failf "unsanitized: %s" (Diag.to_string d));
    quick "checked execution retires the same instructions" (fun () ->
        (* the overhead story: TerraSan is host-side, so fuel use is
           identical; CI's 3x budget bound rests on this *)
        let src =
          {|
            local std = terralib.includec("stdlib.h")
            terra work()
              var p = [&int32](std.malloc(400))
              var s : int32 = 0
              for i = 0, 100 do p[i] = i end
              for i = 0, 100 do s = s + p[i] end
              std.free([&uint8](p))
              return s
            end
            print(work())
          |}
        in
        let run checked =
          let e = engine ~checked () in
          match Engine.run_capture_protected e src with
          | _, Ok _ -> Engine.fuel_used e
          | _, Error d -> Alcotest.failf "overhead: %s" (Diag.to_string d)
        in
        checki "same fuel" (run false) (run true));
  ]

(* ------------------------------------------------------------------ *)
(* Fuzz: random malloc/free/store traffic under checked execution *)

type fuzz_op = Fmalloc of int | Ffree | Ffree_stale | Fstore of int

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 120)
      (frequency
         [
           (3, map (fun n -> Fmalloc n) (int_range 0 96));
           (2, return Ffree);
           (1, return Ffree_stale);
           (4, map (fun off -> Fstore off) (int_range (-24) 160));
         ]))

let pp_ops ops =
  String.concat ";"
    (List.map
       (function
         | Fmalloc n -> Printf.sprintf "m%d" n
         | Ffree -> "f"
         | Ffree_stale -> "fs"
         | Fstore off -> Printf.sprintf "s%d" off)
       ops)

(* Interpret the ops against a checked allocator, tracking a model of
   live and freed blocks. The properties: an in-bounds store never
   faults, a stale free always faults as a double free, and nothing but
   Shadow.Violation ever escapes the checked heap. *)
let prop_checked_traffic =
  QCheck.Test.make ~count:120 ~name:"checked heap: fuzzed malloc/free/store"
    (QCheck.make ~print:pp_ops gen_ops) (fun ops ->
      let mem, a = checked_alloc () in
      let live = ref [] and stale = ref [] in
      let pick l i = List.nth l (i mod List.length l) in
      List.iteri
        (fun i op ->
          match op with
          | Fmalloc n ->
              let p = Alloc.malloc a n in
              live := (p, n) :: !live
          | Ffree when !live <> [] ->
              let p, n = pick !live i in
              Alloc.free a p;
              live := List.filter (fun (q, _) -> q <> p) !live;
              stale := (p, n) :: !stale
          | Ffree -> ()
          | Ffree_stale when !stale <> [] -> (
              let p, _ = pick !stale i in
              match Alloc.free a p with
              | () ->
                  QCheck.Test.fail_reportf "stale free of %#x not caught" p
              | exception Shadow.Violation v ->
                  if v.Shadow.vkind <> Shadow.Double_free then
                    QCheck.Test.fail_reportf "stale free: wrong kind")
          | Ffree_stale -> ()
          | Fstore off when !live <> [] -> (
              let p, n = pick !live i in
              match Mem.set_u8 mem (p + off) 0xAB with
              | () ->
                  if off >= 0 && off < n then ()
                    (* out-of-bounds stores may legally land in another
                       live block; no assertion either way *)
              | exception Shadow.Violation _ ->
                  if off >= 0 && off < n then
                    QCheck.Test.fail_reportf
                      "in-bounds store faulted: %#x+%d of %d" p off n
              | exception Mem.Fault _ -> ())
          | Fstore _ -> ())
        ops;
      (* the model and the allocator agree about what is live *)
      List.length !live = Alloc.live_blocks a)

(* ------------------------------------------------------------------ *)
(* Fuzz: crash consistency of transactional calls.  Inject a fault at a
   randomized point inside Engine.call_transactional and require the
   rollback to restore the session exactly: heap bytes, allocator
   bookkeeping, shadow map, and leak accounting all fingerprint-equal to
   the pre-call snapshot, and the engine still works afterwards. *)

let txn_churn_src =
  {|
    local std = terralib.includec("stdlib.h")
    terra churn(n : int32)
      var acc : int32 = 0
      for i = 0, n do
        var p = [&int32](std.malloc(24 + 8 * (i % 7)))
        p[0] = i
        acc = acc + p[0]
        if i % 3 == 0 then
          std.free([&uint8](p))
        end
      end
      return acc
    end
  |}

let gen_inject =
  QCheck.Gen.(pair bool (int_range 1 60))

let pp_inject (alloc_fault, k) =
  Printf.sprintf "%s@%d" (if alloc_fault then "fail-alloc" else "trap-at-step") k

let prop_txn_crash_consistency =
  QCheck.Test.make ~count:40
    ~name:"transactional call: fault at a random point rolls back exactly"
    (QCheck.make ~print:pp_inject gen_inject) (fun (alloc_fault, k) ->
      let e = engine ~checked:true () in
      (match Engine.run_capture_protected e txn_churn_src with
      | _, Ok _ -> ()
      | _, Error d -> QCheck.Test.fail_reportf "setup: %s" (Diag.to_string d));
      (* warm up outside the transaction: compiles churn and commits a
         baseline of leaked blocks *)
      (match Engine.call_transactional e "churn" [ Mlua.Value.Num 4. ] with
      | Ok _ -> ()
      | Error d -> QCheck.Test.fail_reportf "warmup: %s" (Diag.to_string d));
      let vm = e.Engine.ctx.Context.vm in
      let mark = Engine.statics_mark e in
      let fp0 = Engine.fingerprint ~statics_upto:mark e in
      let leaks0 = Engine.leak_report e in
      Engine.inject e
        (if alloc_fault then Fault.Fail_alloc (1 + (k mod 20))
         else Fault.Trap_at_step (Tvm.Vm.steps vm + k));
      match Engine.call_transactional e "churn" [ Mlua.Value.Num 40. ] with
      | Ok _ ->
          (* the fault landed beyond the call; the txn legitimately
             committed, so there is nothing to compare *)
          true
      | Error d ->
          if not (Diag.is_runtime_fault d) then
            QCheck.Test.fail_reportf "unexpected diagnostic: %s"
              (Diag.to_string d);
          let fp1 = Engine.fingerprint ~statics_upto:mark e in
          if fp0 <> fp1 then
            QCheck.Test.fail_reportf
              "rollback changed the session: %s -> %s (fault %s)" fp0 fp1
              (pp_inject (alloc_fault, k));
          if leaks0 <> Engine.leak_report e then
            QCheck.Test.fail_reportf "leak accounting changed after rollback";
          (* the session survives: the same call succeeds afterwards *)
          (match Engine.call_transactional e "churn" [ Mlua.Value.Num 4. ] with
          | Ok _ -> ()
          | Error d ->
              QCheck.Test.fail_reportf "post-rollback call failed: %s"
                (Diag.to_string d));
          true)

let () =
  Alcotest.run "san"
    [
      ("alloc", alloc_tests);
      ("unchecked", unchecked_tests);
      ("mem+fault", mem_fault_tests);
      ("golden", golden_tests);
      ("isolation", isolation_tests @ [ QCheck_alcotest.to_alcotest prop_checked_traffic ]);
      ("txn-fuzz", [ QCheck_alcotest.to_alcotest prop_txn_crash_consistency ]);
    ]
