(* terra_serve: the protocol, engine-reuse hygiene, admission control,
   per-tenant circuit breakers, and the deterministic mixed-traffic
   soak.  Everything drives the in-process [Serve.Server] — the binary
   adds only channel plumbing on top of [Server.run_channels], which is
   covered here too. *)

open Terra
module Json = Tprof.Json
module Server = Serve.Server
module Protocol = Serve.Protocol
module Tenant = Serve.Tenant
module Pool = Serve.Pool
module Batch = Supervise.Batch

let quick = Harness.quick
let checks = Alcotest.(check string)
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* ------------------------------------------------------------------ *)
(* Response plumbing *)

let jget j k =
  match Json.member k j with
  | Some v -> v
  | None -> Alcotest.failf "response missing field %S" k

let jstr j k =
  match jget j k with
  | Json.Str s -> s
  | Json.Null -> "<null>"
  | _ -> Alcotest.failf "field %S is not a string" k

let jint j k =
  match jget j k with
  | Json.Int n -> n
  | _ -> Alcotest.failf "field %S is not an int" k

let jbool j k =
  match jget j k with
  | Json.Bool b -> b
  | _ -> Alcotest.failf "field %S is not a bool" k

let jlist j k =
  match jget j k with
  | Json.List l -> l
  | _ -> Alcotest.failf "field %S is not a list" k

let mk_server ?(pool = 2) ?(recycle = 64) ?(checked = true) ?(verify = true)
    ?(budget = Tenant.default_budget) () =
  let config =
    {
      Server.default_config with
      pool_size = pool;
      recycle_after = recycle;
      checked;
      verify_rollback = verify;
      mem_bytes = Some (32 * 1024 * 1024);
      default_budget = budget;
    }
  in
  Server.create ~config ()

let ask server line =
  match Server.handle server line with
  | Some (j, `Continue) -> j
  | Some (_, `Shutdown) -> Alcotest.failf "line %S shut the server down" line
  | None -> Alcotest.failf "line %S produced no response" line

(** Build a JSON run-request line with the emitter itself, so tests
    never hand-escape strings. *)
let run_line ?path ?src ?tenant ?fuel ?retries ?fail_alloc ?trap_in () =
  let opt k v f = match v with Some x -> [ (k, f x) ] | None -> [] in
  Json.to_string
    (Json.Obj
       (opt "path" path (fun s -> Json.Str s)
       @ opt "src" src (fun s -> Json.Str s)
       @ opt "tenant" tenant (fun s -> Json.Str s)
       @ opt "fuel" fuel (fun n -> Json.Int n)
       @ opt "retries" retries (fun n -> Json.Int n)
       @ opt "fail_alloc" fail_alloc (fun n -> Json.Int n)
       @ opt "trap_in" trap_in (fun n -> Json.Int n)))

(* Request corpus: one representative per failure mode. *)
let good_src = "terra f() return 40 + 2 end print(f())"

let alloc_src =
  "local std = terralib.includec(\"stdlib.h\") terra g() var p = \
   [&int32](std.malloc(32)) p[0] = 7 var v = p[0] std.free([&uint8](p)) \
   return v end print(g())"

let divzero_src = "terra d(n : int32) return 10 / n end print(d(0))"

let spin_src =
  "terra spin(n : int32) var x = 0 for i = 0, n do x = x + i end return x \
   end print(spin(1000000))"

let recur_src = "terra f(n : int) : int return f(n + 1) end print(f(0))"

(* ------------------------------------------------------------------ *)
(* The wire protocol *)

let protocol_tests =
  [
    quick "the JSON parser round-trips emitted values" (fun () ->
        let j =
          Json.Obj
            [
              ("a", Json.List [ Json.Int 1; Json.Int (-2); Json.Bool true ]);
              ("s", Json.Str "line\nbreak \"quoted\" \\ tab\t");
              ("f", Json.Float 1.5);
              ("n", Json.Null);
              ("o", Json.Obj [ ("k", Json.Str "v") ]);
            ]
        in
        match Json.of_string (Json.to_string j) with
        | Error msg -> Alcotest.failf "round-trip failed: %s" msg
        | Ok j' ->
            checks "round-trip" (Json.to_string j) (Json.to_string j');
            checks "nested member" "v"
              (match Json.member "o" j' with
              | Some o -> jstr o "k"
              | None -> "<missing>"));
    quick "the JSON parser handles escapes and rejects garbage" (fun () ->
        (match Json.of_string "  {\"u\":\"\\u0041\",\"e\":[]}  " with
        | Ok j -> checks "unicode escape" "A" (jstr j "u")
        | Error msg -> Alcotest.failf "parse failed: %s" msg);
        let bad s =
          match Json.of_string s with
          | Ok _ -> Alcotest.failf "accepted malformed %S" s
          | Error _ -> ()
        in
        bad "{";
        bad "1 2";
        bad "nul";
        bad "{\"a\":}";
        bad "\"unterminated");
    quick "blank and comment lines are ignored" (fun () ->
        List.iter
          (fun line ->
            match Protocol.parse line with
            | Ok None -> ()
            | _ -> Alcotest.failf "line %S should be ignored" line)
          [ ""; "   "; "\t"; "# a manifest comment" ]);
    quick "both request spellings parse to the same shape" (fun () ->
        (match
           Protocol.parse
             (run_line ~src:good_src ~tenant:"alice" ~fuel:5 ~retries:1 ())
         with
        | Ok (Some (Protocol.Run r)) ->
            checkb "no path" true (r.Protocol.r_path = None);
            checks "tenant" "alice"
              (Option.value r.Protocol.r_tenant ~default:"<none>");
            checki "fuel" 5 (Option.value r.Protocol.r_fuel ~default:(-1));
            checki "retries" 1
              (Option.value r.Protocol.r_retries ~default:(-1))
        | _ -> Alcotest.fail "JSON run line did not parse");
        match Protocol.parse "programs/leak.t fuel=5 tenant=bob" with
        | Ok (Some (Protocol.Run r)) ->
            checks "manifest path"
              (Filename.concat "." "programs/leak.t")
              (Option.value r.Protocol.r_path ~default:"<none>");
            checks "manifest tenant" "bob"
              (Option.value r.Protocol.r_tenant ~default:"<none>");
            checki "manifest fuel" 5
              (Option.value r.Protocol.r_fuel ~default:(-1))
        | _ -> Alcotest.fail "manifest line did not parse");
    quick "introspection ops parse" (fun () ->
        List.iter
          (fun (line, want) ->
            match Protocol.parse line with
            | Ok (Some got) when got = want -> ()
            | _ -> Alcotest.failf "op line %S misparsed" line)
          [
            ("{\"op\":\"status\"}", Protocol.Status);
            ("{\"op\":\"profile\"}", Protocol.Profile);
            ("{\"op\":\"breakers\"}", Protocol.Breakers);
            ("{\"op\":\"shutdown\"}", Protocol.Shutdown);
          ]);
    quick "malformed requests are structured diagnostics" (fun () ->
        let bad line want_code =
          match Protocol.parse line with
          | Error d -> checks ("code for " ^ line) want_code d.Diag.code
          | Ok _ -> Alcotest.failf "line %S should be rejected" line
        in
        bad "{\"op\":\"nope\"}" "serve.bad-request";
        bad "{}" "serve.bad-request";
        bad "{\"path\":\"a.t\",\"src\":\"x\"}" "serve.bad-request";
        bad "{\"src\":\"x\",\"fuel\":-1}" "serve.bad-request";
        bad "{\"src\":\"x\",\"fuel\":\"lots\"}" "serve.bad-request";
        bad "{broken json" "serve.bad-request";
        bad "a.t fuel=abc" "batch.bad-manifest";
        bad "a.t tenant=" "batch.bad-manifest");
  ]

(* ------------------------------------------------------------------ *)
(* Engine-reuse hygiene (satellite: reset_scope ~slice) *)

let hygiene_tests =
  [
    quick "two sequential leaky requests are each reported once" (fun () ->
        let e = Harness.engine ~checked:true () in
        let leak_src = Harness.read_file (Harness.golden "leak.t") in
        let _ = Harness.run_ok e leak_src in
        let leaks1 = Engine.leak_report e in
        checki "first request leaks one block" 1 (List.length leaks1);
        (* the serving layer's between-requests reset: the old leak
           becomes baseline, so the next report starts empty *)
        Engine.reset_scope ~slice:true e;
        checki "re-armed report is empty" 0
          (List.length (Engine.leak_report e));
        let _ = Harness.run_ok e leak_src in
        let leaks2 = Engine.leak_report e in
        checki "second request leaks one block, not two" 1
          (List.length leaks2);
        checki "and it is the fresh 64-byte block" 64
          (List.fold_left (fun a (_, s) -> a + s) 0 leaks2));
    quick "profile slices cover exactly one request" (fun () ->
        let e = Harness.engine ~profile:true () in
        let _ = Harness.run_ok e spin_src in
        let heavy = (Engine.profile e).Tprof.Report.total in
        Engine.reset_scope ~slice:true e;
        let _ = Harness.run_ok e good_src in
        let light = (Engine.profile e).Tprof.Report.total in
        checkb "light request retired work" true (light > 0);
        checkb "slice excludes the heavy request" true (light < heavy);
        (* determinism: the same request costs the same slice *)
        Engine.reset_scope ~slice:true e;
        let _ = Harness.run_ok e good_src in
        checki "identical request, identical slice" light
          (Engine.profile e).Tprof.Report.total);
  ]

(* ------------------------------------------------------------------ *)
(* Single requests through the server *)

let serve_tests =
  [
    quick "a good request round-trips with exit 0" (fun () ->
        let s = mk_server () in
        let r = ask s (run_line ~src:good_src ()) in
        checks "schema" "terra-batch-2" (jstr r "schema");
        checks "status" "ok" (jstr r "status");
        checks "output" "42\n" (jstr r "output");
        checks "tenant" "default" (jstr r "tenant");
        checki "exit" 0 (jint r "exit");
        checki "leaked" 0 (jint r "leaked_bytes");
        checkb "not recycled" false (jbool r "recycled");
        checkb "fuel charged" true (jint r "fuel" > 0));
    quick "a checked san failure rolls back verified with exit 2" (fun () ->
        let s = mk_server () in
        let r =
          ask s (run_line ~path:"programs/heap_overflow.t" ~tenant:"carol" ())
        in
        checks "status" "error" (jstr r "status");
        checks "code" "san.heap-overflow" (jstr r "code");
        checki "exit" 2 (jint r "exit");
        checks "rollback" "verified" (jstr r "rollback");
        checki "nothing survives the rollback" 0 (jint r "leaked_bytes"));
    quick "a missing script is batch.io with exit 1" (fun () ->
        let s = mk_server () in
        let r = ask s (run_line ~path:"programs/nonexistent.t" ()) in
        checks "status" "error" (jstr r "status");
        checks "code" "batch.io" (jstr r "code");
        checki "exit" 1 (jint r "exit"));
    quick "an unparseable line is answered, not fatal" (fun () ->
        let s = mk_server () in
        let r = ask s "{broken" in
        checks "status" "error" (jstr r "status");
        checks "code" "serve.bad-request" (jstr r "code");
        checki "exit" 1 (jint r "exit");
        (* the server keeps serving *)
        checks "next request ok" "ok" (jstr (ask s (run_line ~src:good_src ())) "status"));
    quick "an injected transient fault is retried to success" (fun () ->
        let s = mk_server () in
        let r = ask s (run_line ~src:alloc_src ~fail_alloc:1 ()) in
        checks "status" "ok" (jstr r "status");
        checkb "retried" true (jint r "retries" >= 1);
        checkb "attempts" true (jint r "attempts" >= 2);
        checki "exit" 0 (jint r "exit"));
    quick "a fuel-starved request traps and rolls back" (fun () ->
        let s = mk_server () in
        let r = ask s (run_line ~src:spin_src ~fuel:80 ()) in
        checks "status" "error" (jstr r "status");
        checks "code" "trap.fuel" (jstr r "code");
        checki "exit" 2 (jint r "exit");
        checks "rollback" "verified" (jstr r "rollback"));
    quick "a tenant depth cap applies per request and is restored" (fun () ->
        let budget =
          { Tenant.default_budget with Tenant.max_call_depth = Some 50 }
        in
        let s = mk_server ~budget () in
        let r = ask s (run_line ~src:recur_src ()) in
        checks "status" "error" (jstr r "status");
        checks "code" "trap.stack" (jstr r "code");
        checks "rollback" "verified" (jstr r "rollback");
        (* the engine still serves ordinary traffic afterwards *)
        checks "after" "ok" (jstr (ask s (run_line ~src:good_src ())) "status"));
    quick "status, profile, and breakers ops answer" (fun () ->
        let s = mk_server () in
        let _ = ask s (run_line ~src:good_src ~tenant:"alice" ()) in
        let _ = ask s (run_line ~src:good_src ~tenant:"bob" ()) in
        let st = ask s "{\"op\":\"status\"}" in
        checks "status schema" "terra-serve-1" (jstr st "schema");
        checki "served" 2 (jint st "served");
        checki "live bytes" 0 (jint st "live_bytes");
        checki "tenants listed" 2 (List.length (jlist st "tenants"));
        checki "pool size" 2 (jint (jget st "pool") "size");
        let pr = ask s "{\"op\":\"profile\"}" in
        checki "one profile per engine" 2 (List.length (jlist pr "engines"));
        List.iter
          (fun e ->
            match jget e "profile" with
            | Json.Obj _ -> ()
            | _ -> Alcotest.fail "engine profile is not an object")
          (jlist pr "engines");
        let br = ask s "{\"op\":\"breakers\"}" in
        checks "breakers schema" "terra-serve-1" (jstr br "schema");
        checki "breaker tables listed" 2 (List.length (jlist br "tenants")));
    quick "shutdown drains clean with exit 0" (fun () ->
        let s = mk_server () in
        let _ = ask s (run_line ~src:good_src ()) in
        (match Server.handle s "{\"op\":\"shutdown\"}" with
        | Some (_, `Shutdown) -> ()
        | _ -> Alcotest.fail "shutdown op not recognized");
        let resp, code = Server.drain s ~reason:"shutdown" in
        checki "exit" 0 code;
        checks "drain status" "clean" (jstr resp "status");
        checks "reason" "shutdown" (jstr resp "reason"));
    quick "run_channels serves a session end to end" (fun () ->
        let dir = Filename.temp_file "serve_session" "" in
        Sys.remove dir;
        Sys.mkdir dir 0o755;
        let in_path = Filename.concat dir "in.jsonl" in
        let out_path = Filename.concat dir "out.jsonl" in
        let oc = open_out in_path in
        output_string oc
          (String.concat "\n"
             [
               "# a comment and a blank line are ignored";
               "";
               run_line ~src:good_src ~tenant:"alice" ();
               "{broken";
               run_line ~path:"programs/leak.t" ~tenant:"frank" ();
               "{\"op\":\"shutdown\"}";
             ]);
        output_char oc '\n';
        close_out oc;
        let s = mk_server () in
        let ic = open_in in_path and oc = open_out out_path in
        let code = Server.run_channels s ic oc in
        close_in ic;
        close_out oc;
        checki "process exit" 0 code;
        let lines = ref [] in
        let ic = open_in out_path in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> close_in ic);
        let lines = List.rev !lines in
        checki "three responses plus the drain" 4 (List.length lines);
        let parsed =
          List.map
            (fun l ->
              match Json.of_string l with
              | Ok j -> j
              | Error m -> Alcotest.failf "unparseable response %S: %s" l m)
            lines
        in
        (match parsed with
        | [ good; bad; leak; drainr ] ->
            checks "good" "ok" (jstr good "status");
            checks "bad" "serve.bad-request" (jstr bad "code");
            checki "leak bytes" 64 (jint leak "leaked_bytes");
            checkb "leaky engine recycled" true (jbool leak "recycled");
            checks "drain op" "shutdown" (jstr drainr "op");
            checks "drain clean" "clean" (jstr drainr "status")
        | _ -> Alcotest.fail "unexpected response shape"));
    quick "end of input drains gracefully too" (fun () ->
        let dir = Filename.temp_file "serve_eof" "" in
        Sys.remove dir;
        Sys.mkdir dir 0o755;
        let in_path = Filename.concat dir "in.jsonl" in
        let out_path = Filename.concat dir "out.jsonl" in
        let oc = open_out in_path in
        output_string oc (run_line ~src:good_src () ^ "\n");
        close_out oc;
        let s = mk_server () in
        let ic = open_in in_path and oc = open_out out_path in
        let code = Server.run_channels s ic oc in
        close_in ic;
        close_out oc;
        checki "clean eof exit" 0 code;
        let ic = open_in out_path in
        let _first = input_line ic in
        let drain_line = input_line ic in
        close_in ic;
        match Json.of_string drain_line with
        | Ok j -> checks "reason" "eof" (jstr j "reason")
        | Error m -> Alcotest.failf "unparseable drain: %s" m);
    quick "over-long request lines are rejected and service continues"
      (fun () ->
        let dir = Filename.temp_file "serve_longline" "" in
        Sys.remove dir;
        Sys.mkdir dir 0o755;
        let in_path = Filename.concat dir "in.jsonl" in
        let out_path = Filename.concat dir "out.jsonl" in
        let oc = open_out in_path in
        output_string oc
          (String.concat "\n"
             [
               run_line ~src:good_src ~tenant:"alice" ();
               (* a 4000-byte line: drained unbuffered, never parsed *)
               String.make 4000 'A';
               run_line ~src:good_src ~tenant:"alice" ();
             ]);
        output_char oc '\n';
        close_out oc;
        let config =
          {
            Server.default_config with
            pool_size = 1;
            checked = true;
            mem_bytes = Some (32 * 1024 * 1024);
            max_line_bytes = 512;
          }
        in
        let s = Server.create ~config () in
        let ic = open_in in_path and oc = open_out out_path in
        let code = Server.run_channels s ic oc in
        close_in ic;
        close_out oc;
        checki "clean exit" 0 code;
        let lines = ref [] in
        let ic = open_in out_path in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> close_in ic);
        (match
           List.rev_map
             (fun l ->
               match Json.of_string l with
               | Ok j -> j
               | Error m -> Alcotest.failf "unparseable response %S: %s" l m)
             !lines
         with
        | [ good1; oversize; good2; drainr ] ->
            checks "first request is fine" "ok" (jstr good1 "status");
            checks "oversize is rejected" "serve.bad-request"
              (jstr oversize "code");
            checks "oversize is an error" "error" (jstr oversize "status");
            checkb "rejection names the true length" true
              (let m = jstr oversize "message" in
               let has_sub sub =
                 let ls = String.length sub and lm = String.length m in
                 let rec go i =
                   i + ls <= lm && (String.sub m i ls = sub || go (i + 1))
                 in
                 go 0
               in
               has_sub "4000" && has_sub "512");
            checks "service continues afterwards" "ok" (jstr good2 "status");
            checks "drain is clean" "clean" (jstr drainr "status")
        | _ -> Alcotest.fail "expected three responses plus the drain");
        checki "all three lines counted as served" 3 s.Server.served);
  ]

(* ------------------------------------------------------------------ *)
(* Admission control *)

let admission_tests =
  [
    quick "a fuel ask over the per-request cap is rejected" (fun () ->
        let budget =
          { Tenant.default_budget with Tenant.fuel_per_request = 1000 }
        in
        let s = mk_server ~budget () in
        let r = ask s (run_line ~src:good_src ~fuel:2000 ()) in
        checks "status" "rejected" (jstr r "status");
        checks "code" "serve.rejected" (jstr r "code");
        checki "exit" 1 (jint r "exit");
        (* rejection costs no engine time *)
        let st = ask s "{\"op\":\"status\"}" in
        List.iter
          (fun slot -> checki "slot untouched" 0 (jint slot "total"))
          (jlist (jget st "pool") "slots");
        (* a within-cap ask still runs *)
        checks "within cap" "ok"
          (jstr (ask s (run_line ~src:good_src ~fuel:1000 ())) "status"));
    quick "the in-flight budget gates admission" (fun () ->
        let budget = { Tenant.default_budget with Tenant.max_inflight = 0 } in
        let s = mk_server ~budget () in
        let r = ask s (run_line ~src:good_src ()) in
        checks "status" "rejected" (jstr r "status");
        checks "code" "serve.rejected" (jstr r "code"));
    quick "the cumulative fuel budget exhausts" (fun () ->
        let budget = { Tenant.default_budget with Tenant.fuel_total = 1 } in
        let s = mk_server ~budget () in
        let r1 = ask s (run_line ~src:spin_src ()) in
        checks "first admitted but starved" "trap.fuel" (jstr r1 "code");
        let r2 = ask s (run_line ~src:good_src ()) in
        checks "second rejected" "serve.rejected" (jstr r2 "code"));
    quick "the memory budget counts committed growth" (fun () ->
        let budget = { Tenant.default_budget with Tenant.mem_bytes = 1 } in
        let s = mk_server ~budget () in
        let r1 = ask s (run_line ~path:"programs/leak.t" ()) in
        checks "first runs" "ok" (jstr r1 "status");
        checki "and leaks" 64 (jint r1 "leaked_bytes");
        let r2 = ask s (run_line ~src:good_src ()) in
        checks "second rejected" "serve.rejected" (jstr r2 "code");
        checkb "reason names the heap" true
          (Harness.contains_sub ~sub:"heap growth" (jstr r2 "message")));
  ]

(* ------------------------------------------------------------------ *)
(* Per-tenant circuit breakers *)

let breaker_tests =
  [
    quick "a hostile tenant trips its breaker; neighbors don't notice"
      (fun () ->
        let s = mk_server () in
        let mallory () =
          ask s (run_line ~src:divzero_src ~retries:0 ~tenant:"mallory" ())
        in
        let alice () =
          ask s (run_line ~src:good_src ~tenant:"alice" ())
        in
        for _ = 1 to 3 do
          let r = mallory () in
          checks "divzero" "trap.divzero" (jstr r "code");
          checks "rolled back" "verified" (jstr r "rollback");
          (* alice interleaves and never sees mallory's failures *)
          checks "alice ok" "ok" (jstr (alice ()) "status")
        done;
        let r = mallory () in
        checks "breaker open" "cb.open" (jstr r "code");
        checki "exit" 2 (jint r "exit");
        checks "alice still ok" "ok" (jstr (alice ()) "status");
        (* the breakers op names the open circuit *)
        let br = ask s "{\"op\":\"breakers\"}" in
        let mallory_entry =
          List.find
            (fun t -> jstr t "tenant" = "mallory")
            (jlist br "tenants")
        in
        let key =
          List.find
            (fun k -> jstr k "key" = "mallory")
            (jlist mallory_entry "keys")
        in
        checks "state" "open" (jstr key "state"));
  ]

(* ------------------------------------------------------------------ *)
(* The soak: >= 1000 mixed requests through one server *)

let soak_tests =
  [
    quick "1050 mixed requests: stable, leak-free, fault-isolated"
      (fun () ->
        let s = mk_server ~pool:2 ~recycle:40 () in
        let san =
          [|
            "programs/heap_overflow.t";
            "programs/use_after_free.t";
            "programs/double_free.t";
            "programs/invalid_free.t";
          |]
        in
        let n = 1050 in
        let goods = ref 0
        and sans = ref 0
        and fuels = ref 0
        and chaos = ref 0
        and divzeros = ref 0
        and cb_opens = ref 0
        and carol_cb = ref 0
        and dave_cb = ref 0
        and leaks = ref 0 in
        let stable = ref true in
        for i = 0 to n - 1 do
          if i mod 97 = 13 then begin
            (* a leaky tenant: reported once, engine recycled, exit
               parity with checked one-shot terra_run (leak => 2) *)
            let r =
              ask s (run_line ~path:"programs/leak.t" ~tenant:"frank" ())
            in
            incr leaks;
            checks "leak status" "ok" (jstr r "status");
            checki "leak exit" 2 (jint r "exit");
            checki "leak bytes" 64 (jint r "leaked_bytes");
            checkb "leak recycles" true (jbool r "recycled")
          end
          else
            match i mod 7 with
            | 1 ->
                let r =
                  ask s (run_line ~path:san.(i mod 4) ~tenant:"carol" ())
                in
                checks "san status" "error" (jstr r "status");
                checki "san exit" 2 (jint r "exit");
                checks "san rollback" "verified" (jstr r "rollback");
                checki "san leaves nothing" 0 (jint r "leaked_bytes");
                (* carol fails every request, so her breaker opens after
                   the threshold and only half-open probes run for real *)
                (match jstr r "code" with
                | "cb.open" -> incr carol_cb
                | c when has_prefix ~prefix:"san." c -> incr sans
                | c -> Alcotest.failf "unexpected san code %s" c)
            | 2 ->
                let r =
                  ask s (run_line ~src:spin_src ~fuel:80 ~tenant:"dave" ())
                in
                checki "fuel exit" 2 (jint r "exit");
                checks "fuel rollback" "verified" (jstr r "rollback");
                (match jstr r "code" with
                | "cb.open" -> incr dave_cb
                | "trap.fuel" -> incr fuels
                | c -> Alcotest.failf "unexpected fuel code %s" c)
            | 4 ->
                let r =
                  ask s
                    (run_line ~src:alloc_src ~fail_alloc:1 ~tenant:"erin" ())
                in
                incr chaos;
                checks "chaos recovers" "ok" (jstr r "status");
                checkb "chaos retried" true (jint r "retries" >= 1);
                checki "chaos exit" 0 (jint r "exit");
                checki "chaos leaves nothing" 0 (jint r "leaked_bytes")
            | 6 ->
                let r =
                  ask s
                    (run_line ~src:divzero_src ~retries:0 ~tenant:"mallory" ())
                in
                checks "mallory status" "error" (jstr r "status");
                checki "mallory exit" 2 (jint r "exit");
                checks "mallory rollback" "verified" (jstr r "rollback");
                (match jstr r "code" with
                | "cb.open" -> incr cb_opens
                | "trap.divzero" -> incr divzeros
                | c -> Alcotest.failf "unexpected mallory code %s" c)
            | _ ->
                let r = ask s (run_line ~src:good_src ~tenant:"alice" ()) in
                incr goods;
                checks "good status" "ok" (jstr r "status");
                checki "good exit" 0 (jint r "exit");
                checki "good leaves nothing" 0 (jint r "leaked_bytes");
                if jstr r "output" <> "42\n" then stable := false
        done;
        checkb "soak size" true (n >= 1000);
        checkb "every class exercised" true
          (!goods > 100
          && !sans + !carol_cb > 100
          && !fuels + !dave_cb > 100
          && !chaos > 100 && !leaks >= 10);
        checkb "good outputs byte-stable across the run" true !stable;
        checkb "real san faults surfaced" true (!sans >= 3);
        checkb "real fuel traps surfaced" true (!fuels >= 3);
        checkb "mallory tripped real faults first" true (!divzeros >= 3);
        (* three independently hostile tenants, three open breakers *)
        checkb "mallory's breaker opened" true (!cb_opens > 0);
        checkb "carol's breaker opened" true (!carol_cb > 0);
        checkb "dave's breaker opened" true (!dave_cb > 0);
        (* zero leak growth across the pool: every leak was contained
           by a recycle, everything else cleaned up after itself *)
        checki "pool live bytes" 0 (Pool.live_bytes s.Server.pool);
        let st = ask s "{\"op\":\"status\"}" in
        checki "every request served" n (jint st "served");
        let pool_j = jget st "pool" in
        checkb "wear recycling happened" true
          (jint pool_j "recycled_wear" > 0);
        checkb "every leak forced a recycle" true
          (jint pool_j "recycled_leak" >= !leaks);
        checki "no failed rollback ever" 0
          (jint pool_j "recycled_fingerprint");
        (* graceful drain: pool clean, process exit 0 *)
        (match Server.handle s "{\"op\":\"shutdown\"}" with
        | Some (_, `Shutdown) -> ()
        | _ -> Alcotest.fail "shutdown op not recognized");
        let resp, code = Server.drain s ~reason:"shutdown" in
        checki "drain exit" 0 code;
        checks "drain status" "clean" (jstr resp "status"));
  ]

let () =
  Alcotest.run "serve"
    [
      ("protocol", protocol_tests);
      ("hygiene", hygiene_tests);
      ("serve", serve_tests);
      ("admission", admission_tests);
      ("breakers", breaker_tests);
      ("soak", soak_tests);
    ]
