(* The supervised execution layer: transactional Terra calls
   (snapshot/rollback with fingerprint verification), retry with
   deterministic backoff, circuit breakers, per-call fuel watchdogs,
   opt-level fallback, the batch front end, and the global-state
   regressions (per-allocator jitter, interpreter knob save/restore)
   that make several live engines safe. *)

module V = Mlua.Value
module Mem = Tvm.Mem
module Alloc = Tvm.Alloc
module Fault = Tvm.Fault
module Policy = Supervise.Policy
module Supervisor = Supervise.Supervisor
module Batch = Supervise.Batch
open Terra

let checks = Alcotest.(check string)
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let quick = Harness.quick
let engine = Harness.engine
let run_ok e src = Harness.run_ok e src
let contains_sub = Harness.contains_sub
let vm_of e = e.Engine.ctx.Context.vm

(* ------------------------------------------------------------------ *)
(* Policy: backoff *)

let backoff_tests =
  [
    quick "schedule is exponential up to the cap (no jitter)" (fun () ->
        let b =
          { Policy.bo_base = 10; bo_factor = 2; bo_cap = 100; bo_jitter = 0 }
        in
        let sched =
          List.map
            (fun a -> Policy.delay b ~seed:"f" ~attempt:a)
            [ 1; 2; 3; 4; 5; 6 ]
        in
        Alcotest.(check (list int)) "schedule" [ 10; 20; 40; 80; 100; 100 ]
          sched);
    quick "jitter is deterministic and bounded" (fun () ->
        let b = Policy.default_backoff in
        let d1 = Policy.delay b ~seed:"f" ~attempt:1 in
        let d2 = Policy.delay b ~seed:"f" ~attempt:1 in
        checki "same inputs, same delay" d1 d2;
        checkb "within jitter bound" true
          (d1 >= b.Policy.bo_base
          && d1 < b.Policy.bo_base + b.Policy.bo_jitter));
    quick "different seeds de-synchronize retries" (fun () ->
        (* at least two of these seeds must land on different jitter *)
        let b = Policy.default_backoff in
        let ds =
          List.map
            (fun s -> Policy.delay b ~seed:s ~attempt:1)
            [ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" ]
        in
        checkb "not all equal" true
          (List.exists (fun d -> d <> List.hd ds) ds));
  ]

(* ------------------------------------------------------------------ *)
(* Policy: circuit breaker *)

let breaker_tests =
  [
    quick "closed -> open after threshold consecutive failures" (fun () ->
        let b =
          Policy.breaker
            ~config:{ Policy.cb_threshold = 3; cb_cooldown = 5 }
            ()
        in
        for _ = 1 to 2 do
          checkb "admitted" true (Policy.admit b "f" = `Allow);
          Policy.record b "f" ~ok:false
        done;
        (match Policy.breaker_state b "f" with
        | Policy.Closed 2 -> ()
        | _ -> Alcotest.fail "expected Closed 2");
        checkb "third attempt admitted" true (Policy.admit b "f" = `Allow);
        Policy.record b "f" ~ok:false;
        (match Policy.breaker_state b "f" with
        | Policy.Open _ -> ()
        | _ -> Alcotest.fail "expected Open");
        (* while open, calls are rejected *)
        match Policy.admit b "f" with
        | `Reject n -> checkb "cooldown remaining" true (n > 0)
        | `Allow -> Alcotest.fail "expected rejection");
    quick "a success resets the consecutive-failure count" (fun () ->
        let b =
          Policy.breaker
            ~config:{ Policy.cb_threshold = 2; cb_cooldown = 5 }
            ()
        in
        ignore (Policy.admit b "f");
        Policy.record b "f" ~ok:false;
        ignore (Policy.admit b "f");
        Policy.record b "f" ~ok:true;
        ignore (Policy.admit b "f");
        Policy.record b "f" ~ok:false;
        match Policy.breaker_state b "f" with
        | Policy.Closed 1 -> ()
        | _ -> Alcotest.fail "expected Closed 1");
    quick "open -> half-open probe after cooldown; success closes" (fun () ->
        let b =
          Policy.breaker
            ~config:{ Policy.cb_threshold = 1; cb_cooldown = 3 }
            ()
        in
        ignore (Policy.admit b "f");
        Policy.record b "f" ~ok:false;
        (* each rejected admission advances the logical clock *)
        (match Policy.admit b "f" with
        | `Reject _ -> ()
        | `Allow -> Alcotest.fail "too early");
        (match Policy.admit b "f" with
        | `Reject _ -> ()
        | `Allow -> Alcotest.fail "still too early");
        (match Policy.admit b "f" with
        | `Allow -> ()
        | `Reject _ -> Alcotest.fail "cooldown should have expired");
        (match Policy.breaker_state b "f" with
        | Policy.Half_open -> ()
        | _ -> Alcotest.fail "expected Half_open");
        Policy.record b "f" ~ok:true;
        match Policy.breaker_state b "f" with
        | Policy.Closed 0 -> ()
        | _ -> Alcotest.fail "expected Closed 0");
    quick "failed half-open probe re-opens the circuit" (fun () ->
        let b =
          Policy.breaker
            ~config:{ Policy.cb_threshold = 1; cb_cooldown = 2 }
            ()
        in
        ignore (Policy.admit b "f");
        Policy.record b "f" ~ok:false;
        ignore (Policy.admit b "f");
        ignore (Policy.admit b "f");
        (match Policy.admit b "f" with
        | `Allow -> ()
        | `Reject _ -> Alcotest.fail "expected half-open probe");
        Policy.record b "f" ~ok:false;
        (match Policy.breaker_state b "f" with
        | Policy.Open _ -> ()
        | _ -> Alcotest.fail "expected Open again");
        match Policy.admit b "f" with
        | `Reject _ -> ()
        | `Allow -> Alcotest.fail "expected rejection after failed probe");
    quick "cb.open diagnostic is an exit-2 runtime fault" (fun () ->
        let d = Policy.open_diag "f" 3 in
        checks "code" "cb.open" d.Diag.code;
        checkb "runtime fault class" true (Diag.is_runtime_fault d));
    quick "breakers are per-function" (fun () ->
        let b =
          Policy.breaker
            ~config:{ Policy.cb_threshold = 1; cb_cooldown = 99 }
            ()
        in
        ignore (Policy.admit b "f");
        Policy.record b "f" ~ok:false;
        checkb "f rejected" true (Policy.admit b "f" <> `Allow);
        checkb "g unaffected" true (Policy.admit b "g" = `Allow));
  ]

(* ------------------------------------------------------------------ *)
(* Transactional calls *)

let churn_src =
  {|
    local std = terralib.includec("stdlib.h")
    terra churn(n : int32)
      var acc : int32 = 0
      for i = 0, n do
        var p = [&int32](std.malloc(32 + 8 * (i % 5)))
        p[0] = i
        acc = acc + p[0]
        if i % 3 == 0 then
          std.free([&uint8](p))
        end
      end
      return acc
    end
  |}

let transact_tests =
  [
    quick "failed call rolls the session back byte-for-byte" (fun () ->
        let e = engine ~checked:true () in
        let _ = run_ok e churn_src in
        (* warm up: compiles churn and commits its (leaky) effects *)
        (match Engine.call_transactional e "churn" [ V.Num 3. ] with
        | Ok _ -> ()
        | Error d -> Alcotest.failf "warmup: %s" (Diag.to_string d));
        let mark = Engine.statics_mark e in
        let fp0 = Engine.fingerprint ~statics_upto:mark e in
        let leaks0 = List.length (Engine.leak_report e) in
        Engine.inject e (Fault.Trap_at_step (Tvm.Vm.steps (vm_of e) + 40));
        (match Engine.call_transactional e "churn" [ V.Num 50. ] with
        | Ok _ -> Alcotest.fail "expected the injected trap"
        | Error d -> checks "code" "fault.trap" d.Diag.code);
        checks "fingerprint unchanged" fp0
          (Engine.fingerprint ~statics_upto:mark e);
        checki "leak accounting unchanged" leaks0
          (List.length (Engine.leak_report e));
        (* and the session still works *)
        match Engine.call_transactional e "churn" [ V.Num 3. ] with
        | Ok _ -> ()
        | Error d -> Alcotest.failf "post-rollback: %s" (Diag.to_string d));
    quick "successful call commits its effects" (fun () ->
        let e = engine ~checked:true () in
        let _ = run_ok e churn_src in
        let leaks0 = List.length (Engine.leak_report e) in
        (match Engine.call_transactional e "churn" [ V.Num 5. ] with
        | Ok [ V.Num 10. ] -> ()
        | Ok vs ->
            Alcotest.failf "unexpected result (%d values)" (List.length vs)
        | Error d -> Alcotest.failf "commit: %s" (Diag.to_string d));
        (* churn(5) leaks the blocks for i = 1, 2, 4 *)
        checki "committed leaks visible" (leaks0 + 3)
          (List.length (Engine.leak_report e)));
    quick "transactions do not nest" (fun () ->
        let e = engine () in
        let r =
          Engine.transact e (fun () ->
              match Engine.transact e (fun () -> ()) with
              | Error d -> d.Diag.code
              | Ok () -> "??")
        in
        match r with
        | Ok code -> checks "inner diagnostic" "txn.nested" code
        | Error d -> Alcotest.failf "outer: %s" (Diag.to_string d));
  ]

(* ------------------------------------------------------------------ *)
(* terralib.transact from Lua *)

let lua_transact_tests =
  [
    quick "transact is pcall with heap rollback" (fun () ->
        let e = engine ~checked:true () in
        let src =
          {|
            local std = terralib.includec("stdlib.h")
            terra bug(n : int32)
              var p = [&int32](std.malloc(64))
              p[0] = n
              var v = p[0]
              if n > 0 then
                std.free([&uint8](p))
                v = p[0] -- use after free
              else
                std.free([&uint8](p))
              end
              return v
            end
            print(bug(0)) -- compile + clean path, outside any transaction
            local fp = terralib.fingerprint()
            local ok, err = terralib.transact(bug, 1)
            print(ok, err.phase, err.code)
            print(fp == terralib.fingerprint())
            print(terralib.leakcheck())
            local ok2, v = terralib.transact(bug, 0)
            print(ok2, v)
          |}
        in
        let out = run_ok e src in
        checks "output"
          "0\nfalse\trun\tsan.use-after-free\ntrue\n0\t0\ntrue\t0\n" out);
    quick "nested transact is rejected from Lua too" (fun () ->
        let e = engine () in
        let src =
          {|
            terra one() return 1 end
            print(one())
            local ok, err = terralib.transact(function()
              local a, d = terralib.transact(one)
              print(a, d.code)
              return 7
            end)
            print(ok, err)
          |}
        in
        checks "output" "1\nfalse\ttxn.nested\ntrue\t7\n" (run_ok e src));
  ]

(* ------------------------------------------------------------------ *)
(* Supervisor: retry, breaker integration, watchdog, opt fallback *)

let supervisor_tests =
  [
    quick "transient injected fault is retried and recovers" (fun () ->
        let e = engine ~checked:true () in
        let _ = run_ok e churn_src in
        (match Engine.call_transactional e "churn" [ V.Num 3. ] with
        | Ok _ -> ()
        | Error d -> Alcotest.failf "warmup: %s" (Diag.to_string d));
        let fp0 = Engine.fingerprint e in
        (* ordinals count from the first injection: arm the next alloc *)
        Engine.inject e (Fault.Fail_alloc 1);
        let o = Supervisor.call e "churn" [ V.Num 3. ] in
        (match o.Supervisor.result with
        | Ok _ -> ()
        | Error d -> Alcotest.failf "retry should recover: %s" (Diag.to_string d));
        checki "attempts" 2 o.Supervisor.attempts;
        checki "retries" 1 o.Supervisor.retries;
        checkb "backoff charged" true (o.Supervisor.backoff_total > 0);
        checkb "no fallback needed" false o.Supervisor.fallback;
        (* the successful retry committed: fingerprint moved on *)
        checkb "committed" true (Engine.fingerprint e <> fp0));
    quick "retry budget exhausts on repeated faults" (fun () ->
        let e = engine () in
        let _ = run_ok e churn_src in
        (match Engine.call_transactional e "churn" [ V.Num 3. ] with
        | Ok _ -> ()
        | Error d -> Alcotest.failf "warmup: %s" (Diag.to_string d));
        (* every attempt allocates afresh, so consecutive ordinals fault
           every attempt: 2 retries then give up *)
        Engine.inject e (Fault.Fail_alloc 1);
        Engine.inject e (Fault.Fail_alloc 2);
        Engine.inject e (Fault.Fail_alloc 3);
        let cfg =
          {
            Supervisor.default_config with
            max_retries = 2;
            opt_fallback = false;
          }
        in
        let o = Supervisor.call ~config:cfg e "churn" [ V.Num 3. ] in
        (match o.Supervisor.result with
        | Error d -> checks "code" "fault.alloc" d.Diag.code
        | Ok _ -> Alcotest.fail "expected exhausted retries");
        checki "attempts" 3 o.Supervisor.attempts;
        checki "retries" 2 o.Supervisor.retries);
    quick "circuit breaker opens and rejects without executing" (fun () ->
        let e = engine ~checked:true () in
        let _ =
          run_ok e
            {|
              local std = terralib.includec("stdlib.h")
              terra bug()
                var p = [&int32](std.malloc(16))
                std.free([&uint8](p))
                return p[0]
              end
              terra warm() return 0 end
              warm()
            |}
        in
        let breaker =
          Policy.breaker
            ~config:{ Policy.cb_threshold = 2; cb_cooldown = 100 }
            ()
        in
        let cfg =
          {
            Supervisor.default_config with
            breaker = Some breaker;
            max_retries = 0;
            opt_fallback = false;
          }
        in
        let o1 = Supervisor.call ~config:cfg e "bug" [] in
        (match o1.Supervisor.result with
        | Error d -> checks "first failure" "san.use-after-free" d.Diag.code
        | Ok _ -> Alcotest.fail "bug should fail");
        let o2 = Supervisor.call ~config:cfg e "bug" [] in
        (match o2.Supervisor.result with
        | Error d -> checks "second failure" "san.use-after-free" d.Diag.code
        | Ok _ -> Alcotest.fail "bug should fail");
        let fp = Engine.fingerprint e in
        let o3 = Supervisor.call ~config:cfg e "bug" [] in
        (match o3.Supervisor.result with
        | Error d -> checks "rejected" "cb.open" d.Diag.code
        | Ok _ -> Alcotest.fail "expected cb.open");
        checki "rejected without executing" 0 o3.Supervisor.attempts;
        checks "session untouched by rejection" fp (Engine.fingerprint e));
    quick "per-call fuel watchdog bounds one call, not the engine" (fun () ->
        let e = engine () in
        let _ =
          run_ok e
            {|
              terra spin(n : int32)
                var s : int32 = 0
                for i = 0, n do s = s + i end
                return s
              end
              spin(1)
            |}
        in
        let cfg =
          {
            Supervisor.default_config with
            call_fuel = Some 200;
            opt_fallback = false;
          }
        in
        let o = Supervisor.call ~config:cfg e "spin" [ V.Num 1000000. ] in
        (match o.Supervisor.result with
        | Error d -> checks "watchdog code" "trap.fuel" d.Diag.code
        | Ok _ -> Alcotest.fail "expected the watchdog to fire");
        checkb "only the budget was burned" true
          (o.Supervisor.fuel_used <= 200);
        (* the engine's own (unlimited) budget survives: a small call runs *)
        match Supervisor.call ~config:cfg e "spin" [ V.Num 10. ] with
        | { Supervisor.result = Ok _; _ } -> ()
        | { Supervisor.result = Error d; _ } ->
            Alcotest.failf "engine should still run: %s" (Diag.to_string d));
    quick "opt fallback retries at opt 0 and reports divergence" (fun () ->
        let e = engine ~opt_level:2 () in
        let _ = run_ok e churn_src in
        (match Engine.call_transactional e "churn" [ V.Num 3. ] with
        | Ok _ -> ()
        | Error d -> Alcotest.failf "warmup: %s" (Diag.to_string d));
        (* a one-shot trap: consumed by the opt-2 attempt, so the opt-0
           rebuild (retries disabled) succeeds -> divergence report *)
        Engine.inject e (Fault.Trap_at_step (Tvm.Vm.steps (vm_of e) + 10));
        let cfg = { Supervisor.default_config with max_retries = 0 } in
        let o = Supervisor.call ~config:cfg e "churn" [ V.Num 3. ] in
        (match o.Supervisor.result with
        | Ok _ -> ()
        | Error d -> Alcotest.failf "fallback: %s" (Diag.to_string d));
        checkb "fallback ran" true o.Supervisor.fallback;
        (match o.Supervisor.divergence with
        | Some d -> checks "code" "supervise.opt-divergence" d.Diag.code
        | None -> Alcotest.fail "expected a divergence report");
        (* the engine's configured opt level is untouched *)
        checki "opt level restored" 2 (Engine.opt_level e));
    quick "supervised script retries get a fresh Lua scope" (fun () ->
        let e = engine () in
        Engine.inject e (Fault.Fail_alloc 1);
        let src =
          {|
            local std = terralib.includec("stdlib.h")
            terra work()
              var p = std.malloc(16)
              std.free(p)
              return 9
            end
            print(work())
          |}
        in
        let o = Supervisor.run_script ~file:"work.t" e src in
        (match o.Supervisor.result with
        | Ok _ -> ()
        | Error d -> Alcotest.failf "script retry: %s" (Diag.to_string d));
        checki "attempts" 2 o.Supervisor.attempts;
        (* only the successful attempt's output is reported *)
        checks "output" "9\n" o.Supervisor.output);
  ]

(* ------------------------------------------------------------------ *)
(* Batch front end *)

let write_file path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc s)

(** Parse a manifest that must be well-formed. *)
let parse_ok path =
  match Batch.parse_manifest path with
  | Ok reqs -> reqs
  | Error d -> Alcotest.failf "manifest parse failed: %s" (Diag.to_string d)

let batch_tests =
  [
    quick "manifest end to end: statuses, budgets, valid report" (fun () ->
        let dir = Filename.temp_file "supervise_batch" "" in
        Sys.remove dir;
        Sys.mkdir dir 0o755;
        write_file (Filename.concat dir "good.t")
          "terra f() return 40 + 2 end\nprint(f())\n";
        write_file (Filename.concat dir "bad.t")
          "terra g(n : int32) return 10 / n end\nprint(g(0))\n";
        write_file
          (Filename.concat dir "batch.manifest")
          "# smoke manifest\ngood.t fuel=100000\nbad.t retries=1\n";
        let e = engine () in
        let json, code =
          Batch.run_manifest e (Filename.concat dir "batch.manifest")
        in
        checki "a failing request fails the batch" 1 code;
        let entries =
          Batch.run_requests e
            (parse_ok (Filename.concat dir "batch.manifest"))
        in
        (match entries with
        | [ good; bad ] ->
            checks "good status" "ok" good.Batch.e_status;
            checks "good output" "42\n" good.Batch.e_output;
            checks "bad status" "error" bad.Batch.e_status;
            (match bad.Batch.e_code with
            | Some "trap.divzero" -> ()
            | c ->
                Alcotest.failf "bad code: %s"
                  (Option.value c ~default:"<none>"))
        | l -> Alcotest.failf "expected 2 entries, got %d" (List.length l));
        (* crude well-formedness: the report mentions both statuses and
           balances its brackets *)
        checkb "mentions ok" true
          (contains_sub ~sub:"\"status\": \"ok\"" json);
        checkb "mentions error" true
          (contains_sub ~sub:"\"status\": \"error\"" json));
    quick "requests share the engine but not Lua globals" (fun () ->
        let dir = Filename.temp_file "supervise_batch2" "" in
        Sys.remove dir;
        Sys.mkdir dir 0o755;
        (* both scripts define a terra function of the same name: with a
           shared scope the second would hit the immutable-definition
           check *)
        write_file (Filename.concat dir "a.t")
          "terra f() return 1 end\nprint(f())\n";
        write_file (Filename.concat dir "b.t")
          "terra f() return 2 end\nprint(f())\n";
        write_file (Filename.concat dir "m") "a.t\nb.t\n";
        let e = engine () in
        let entries =
          Batch.run_requests e
            (parse_ok (Filename.concat dir "m"))
        in
        match entries with
        | [ a; b ] ->
            checks "a" "ok" a.Batch.e_status;
            checks "b" "ok" b.Batch.e_status;
            checks "b output" "2\n" b.Batch.e_output
        | l -> Alcotest.failf "expected 2 entries, got %d" (List.length l));
    quick "missing script is a batch.io error, not a crash" (fun () ->
        let dir = Filename.temp_file "supervise_batch3" "" in
        Sys.remove dir;
        Sys.mkdir dir 0o755;
        write_file (Filename.concat dir "m") "nonexistent.t\n";
        let e = engine () in
        match
          Batch.run_requests e
            (parse_ok (Filename.concat dir "m"))
        with
        | [ entry ] ->
            checks "status" "error" entry.Batch.e_status;
            checks "code" "batch.io"
              (Option.value entry.Batch.e_code ~default:"<none>")
        | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l));
    quick "a malformed manifest is a structured diagnostic" (fun () ->
        let bad line =
          match Batch.parse_line ~dir:"." ~line_no:7 line with
          | Error d ->
              checks ("code for " ^ line) "batch.bad-manifest" d.Diag.code;
              checkb "names the line" true
                (contains_sub ~sub:"line 7" d.Diag.message)
          | Ok _ -> Alcotest.failf "line %S should be rejected" line
        in
        bad "a.t fuel=abc";
        bad "a.t fuel=-1";
        bad "a.t retries=1x";
        bad "a.t tenant=";
        bad "a.t bogus=1";
        bad "a.t fuel";
        (* and through parse_manifest / run_manifest: an error report,
           never an exception *)
        let dir = Filename.temp_file "supervise_badmanifest" "" in
        Sys.remove dir;
        Sys.mkdir dir 0o755;
        write_file (Filename.concat dir "m") "# ok so far\ngood.t\nbad.t fuel=abc\n";
        (match Batch.parse_manifest (Filename.concat dir "m") with
        | Error d ->
            checks "manifest code" "batch.bad-manifest" d.Diag.code;
            checkb "first bad line wins" true
              (contains_sub ~sub:"line 3" d.Diag.message)
        | Ok _ -> Alcotest.fail "malformed manifest accepted");
        let e = engine () in
        let json, code = Batch.run_manifest e (Filename.concat dir "m") in
        checki "bad manifest fails the batch" 1 code;
        checkb "report carries the diagnostic" true
          (contains_sub ~sub:"batch.bad-manifest" json));
    quick "tenant= annotations flow through to the report" (fun () ->
        (match Batch.parse_line ~dir:"." "a.t fuel=9 tenant=alice" with
        | Ok (Some req) ->
            checks "tenant parsed" "alice"
              (Option.value req.Batch.req_tenant ~default:"<none>");
            checks "tenant_of" "alice" (Batch.tenant_of req)
        | _ -> Alcotest.fail "tenanted line did not parse");
        let dir = Filename.temp_file "supervise_tenant" "" in
        Sys.remove dir;
        Sys.mkdir dir 0o755;
        write_file (Filename.concat dir "a.t")
          "terra f() return 1 end\nprint(f())\n";
        write_file (Filename.concat dir "m")
          "a.t tenant=alice\na.t\n";
        let e = engine () in
        match Batch.run_requests e (parse_ok (Filename.concat dir "m")) with
        | [ a; b ] ->
            checks "annotated entry" "alice" a.Batch.e_tenant;
            checks "unannotated entry defaults" Batch.default_tenant
              b.Batch.e_tenant
        | l -> Alcotest.failf "expected 2 entries, got %d" (List.length l));
  ]

(* ------------------------------------------------------------------ *)
(* Global-state regressions (satellites) *)

let regression_tests =
  [
    quick "allocation jitter is per-allocator, not global" (fun () ->
        (* solo: record the addresses a lone allocator hands out *)
        let solo = ref [] in
        let mem = Mem.create () in
        let a = Alloc.create mem in
        for _ = 1 to 8 do
          solo := Alloc.malloc a 32 :: !solo
        done;
        (* interleaved: a second live allocator must not perturb the
           first one's addresses (the jitter cursor used to be a module
           global) *)
        let mem1 = Mem.create () and mem2 = Mem.create () in
        let a1 = Alloc.create mem1 and a2 = Alloc.create mem2 in
        let interleaved = ref [] in
        for i = 1 to 8 do
          if i mod 2 = 0 then ignore (Alloc.malloc a2 48);
          ignore (Alloc.malloc a2 16);
          interleaved := Alloc.malloc a1 32 :: !interleaved
        done;
        Alcotest.(check (list int)) "same addresses" (List.rev !solo)
          (List.rev !interleaved));
    quick "interpreter knobs are saved and restored around runs" (fun () ->
        (* the knobs now live in a per-interpreter state record; a run
           must leave the domain's ambient state untouched *)
        let ambient = Mlua.Interp.current () in
        let saved_depth = ambient.Mlua.Interp.max_call_depth in
        let saved_steps = ambient.Mlua.Interp.steps in
        Fun.protect
          ~finally:(fun () ->
            ambient.Mlua.Interp.max_call_depth <- saved_depth;
            ambient.Mlua.Interp.steps <- saved_steps)
          (fun () ->
            ambient.Mlua.Interp.max_call_depth <- 123;
            ambient.Mlua.Interp.steps <- 45678;
            let e = engine () in
            let _ = run_ok e "print(1 + 1)" in
            checki "depth untouched" 123
              ambient.Mlua.Interp.max_call_depth;
            checki "steps untouched" 45678 ambient.Mlua.Interp.steps));
    quick "two engines with different budgets do not interfere" (fun () ->
        let tight =
          Terrastd.create ~mem_bytes:(8 * 1024 * 1024) ~lua_steps:40 ()
        in
        let roomy = Terrastd.create ~mem_bytes:(8 * 1024 * 1024) () in
        let loop = "local s = 0\nfor i = 1, 1000 do s = s + i end\nprint(s)" in
        (match Engine.run_protected tight loop with
        | Error d -> checks "tight budget trips" "trap.steps" d.Diag.code
        | Ok _ -> Alcotest.fail "expected trap.steps");
        (match Engine.run_capture_protected roomy loop with
        | _, Error d ->
            Alcotest.failf "roomy engine caught tight's budget: %s"
              (Diag.to_string d)
        | out, Ok _ -> checks "roomy runs" "500500\n" out);
        (* and the tight engine's budget is still enforced afterwards *)
        match Engine.run_protected tight loop with
        | Error d -> checks "still enforced" "trap.steps" d.Diag.code
        | Ok _ -> Alcotest.fail "tight budget lost after roomy's run");
  ]

let () =
  Alcotest.run "supervise"
    [
      ("backoff", backoff_tests);
      ("breaker", breaker_tests);
      ("transact", transact_tests);
      ("lua-transact", lua_transact_tests);
      ("supervisor", supervisor_tests);
      ("batch", batch_tests);
      ("regressions", regression_tests);
    ]
