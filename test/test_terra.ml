(* Tests for the Terra language itself: the type system, eager hygienic
   specialization, lazy typechecking, compilation, the combined surface
   language, the FFI, and separate evaluation. Most integration tests are
   complete combined Lua-Terra programs run through the engine. *)

open Terra

let checks = Alcotest.(check string)
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let quick name f = Alcotest.test_case name `Quick f

let run src =
  let e = Engine.create ~mem_bytes:(32 * 1024 * 1024) () in
  let out, _ = Engine.run_capture e src in
  String.trim out

let expect name src expected () = checks name expected (run src)

(* Run through the protected boundary and assert a structured diagnostic
   with the expected phase/code (and optionally span line). *)
let expect_diag name ?phase ?code ?line src () =
  let e = Engine.create ~mem_bytes:(32 * 1024 * 1024) () in
  match Engine.run_capture_protected e src with
  | _, Ok _ -> Alcotest.failf "%s: expected a diagnostic, got Ok" name
  | _, Error d ->
      (match phase with
      | Some p ->
          checks (name ^ " phase") (Diag.phase_name p)
            (Diag.phase_name d.Diag.phase)
      | None -> ());
      (match code with
      | Some c -> checks (name ^ " code") c d.Diag.code
      | None -> ());
      (match line with
      | Some l -> (
          match d.Diag.span with
          | Some (_, got) -> checki (name ^ " line") l got
          | None -> Alcotest.failf "%s: diagnostic has no span" name)
      | None -> ())

(* ------------------------------------------------------------------ *)
(* Type system *)

let types_tests =
  [
    quick "primitive sizes" (fun () ->
        checki "int" 4 (Types.sizeof Types.int_);
        checki "int64" 8 (Types.sizeof Types.int64);
        checki "float" 4 (Types.sizeof Types.float_);
        checki "double" 8 (Types.sizeof Types.double);
        checki "bool" 1 (Types.sizeof Types.bool_);
        checki "ptr" 8 (Types.sizeof (Types.ptr Types.int8));
        checki "array" 24 (Types.sizeof (Types.array Types.double 3));
        checki "vector" 32 (Types.sizeof (Types.vector Types.double 4)));
    quick "struct layout offsets" (fun () ->
        let s = Types.new_struct "S" in
        Types.add_entry s "a" Types.int8;
        Types.add_entry s "b" Types.int32;
        Types.add_entry s "c" Types.int8;
        Types.add_entry s "d" Types.double;
        let l = Types.struct_layout s in
        let off n =
          match Types.field_of s n with
          | Some (_, _, o) -> o
          | None -> Alcotest.fail "missing field"
        in
        checki "a" 0 (off "a");
        checki "b padded" 4 (off "b");
        checki "c" 8 (off "c");
        checki "d padded" 16 (off "d");
        checki "size" 24 l.Types.size;
        checki "align" 8 l.Types.align);
    quick "nominal struct equality" (fun () ->
        let a = Types.new_struct "T" and b = Types.new_struct "T" in
        checkb "distinct" false
          (Types.equal (Types.Tstruct a) (Types.Tstruct b));
        checkb "self" true (Types.equal (Types.Tstruct a) (Types.Tstruct a)));
    quick "structural equality elsewhere" (fun () ->
        checkb "ptr" true
          (Types.equal (Types.ptr Types.int_) (Types.ptr Types.int_));
        checkb "fn" true
          (Types.equal
             (Types.Tfunc ([ Types.int_ ], Types.double))
             (Types.Tfunc ([ Types.int_ ], Types.double))));
    quick "entries frozen after layout" (fun () ->
        let s = Types.new_struct "F" in
        Types.add_entry s "x" Types.int_;
        ignore (Types.struct_layout s);
        checkb "raises" true
          (match Types.add_entry s "y" Types.int_ with
          | exception Types.Type_error _ -> true
          | _ -> false));
    quick "recursive struct by pointer ok" (fun () ->
        let s = Types.new_struct "Node" in
        Types.add_entry s "next" (Types.ptr (Types.Tstruct s));
        Types.add_entry s "v" Types.int_;
        checki "size" 16 (Types.sizeof (Types.Tstruct s)));
    quick "infinite-size struct rejected" (fun () ->
        let s = Types.new_struct "Omega" in
        Types.add_entry s "self" (Types.Tstruct s);
        checkb "raises" true
          (match Types.struct_layout s with
          | exception Types.Type_error _ -> true
          | _ -> false));
    quick "__finalizelayout runs once, at first examination" (fun () ->
        let count = ref 0 in
        let s = Types.new_struct "L" in
        Mlua.Value.raw_set_str s.Types.metamethods "__finalizelayout"
          (Mlua.Value.Func
             (Mlua.Value.new_func (fun _ ->
                  incr count;
                  Types.add_entry s "late" Types.int64;
                  [])));
        checki "not yet" 0 !count;
        ignore (Types.struct_layout s);
        ignore (Types.struct_layout s);
        checki "once" 1 !count;
        checkb "late entry present" true (Types.field_of s "late" <> None));
    quick "reflection from lua" (expect "r"
        {|print(int.name, (&int).name, int:ispointer(), (&int):ispointer())
          print((&double).type == double, vector(float, 4).N)
          struct P { x : int; y : double }
          print(P:isstruct(), terralib.sizeof(P), terralib.offsetof(P, "y"))|}
        "int\t&int\tfalse\ttrue\ntrue\t4\ntrue\t16\t8");
    quick "array type via T[n]" (expect "r"
        "print(int[4].name, terralib.sizeof(double[10]))" "int[4]\t80");
    quick "function type via arrow" (expect "r"
        "local t = {int, double} -> bool print(t.name, t.returntype == bool)"
        "{int,double} -> bool\ttrue");
  ]

(* ------------------------------------------------------------------ *)
(* Specialization: eager, hygienic, shared lexical environment *)

let spec_tests =
  [
    quick "eager capture beats mutation" (expect "s"
        {|local x = 10
          terra f() : int return x end
          x = 99
          print(f())|}
        "10");
    quick "separate evaluation of terra code" (expect "s"
        {|local x = 1
          terra f(y : int) : int return x end
          x = 2
          print(f(0), x)|}
        "1\t2");
    quick "quotes specialize at creation" (expect "s"
        {|local k = 5
          local q = `k + 1
          k = 100
          terra f() : int return [q] end
          print(f())|}
        "6");
    quick "hygiene: quote lets do not capture user variables" (expect "s"
        {|local y = 42
          local mkq = function() return `y end
          terra f() : int
            var y = 7  -- a different y, hygienically renamed
            return [mkq()] + y
          end
          print(f())|}
        "49");
    quick "terra vars visible to escapes (shared env)" (expect "s"
        {|local function double_it(v) return `v + v end
          terra f(x : int) : int
            return [ double_it(x) ]
          end
          print(f(21))|}
        "42");
    quick "loop variables cross into lua during staging" (expect "s"
        {|local total = global(int, 0)
          local function body(i) return quote total = total + i end end
          terra f() : int
            for i = 0, 5 do
              [ body(i) ]
            end
            return total
          end
          print(f())|}
        "10");
    quick "symbols violate hygiene deliberately" (expect "s"
        {|local s = symbol(int, "shared")
          local def = quote var [s] = 33 end
          local use = `[s] + 9
          terra f() : int
            [def]
            return [use]
          end
          print(f())|}
        "42");
    quick "statement splices of quote lists" (expect "s"
        {|local acc = global(int, 0)
          local stmts = terralib.newlist()
          for i = 1, 4 do stmts:insert(quote acc = acc + i end) end
          terra f() : int
            [stmts]
            return acc
          end
          print(f())|}
        "10");
    quick "nested table select sugar" (expect "s"
        {|local lib = { math = { kfun = terra(x : int) : int return x * 3 end } }
          terra f() : int return lib.math.kfun(14) end
          print(f())|}
        "42");
    quick "undefined variable in terra is an error"
      (expect_diag "u" ~phase:Diag.Specialize ~code:"spec.error"
         "terra f() : int return neverdefined end");
    quick "escape evaluating to nil is an error"
      (expect_diag "n" ~phase:Diag.Specialize ~code:"spec.error"
         "local q = nil terra f() : int return [q] end print(f())");
    quick "respecialization does not occur" (expect "s"
        {|local calls = 0
          local function counted()
            calls = calls + 1
            return `1
          end
          terra f() : int return [counted()] end
          f() f() f()
          print(calls)|}
        "1");
  ]

(* ------------------------------------------------------------------ *)
(* Typechecking: lazy, monotonic; conversions *)

let typecheck_tests =
  [
    quick "typecheck happens at first call" (expect "t"
        {|terra bad() : int return 1.5 > 2.0 end -- ill-typed: returns bool
          print("defined ok")
          local ok = pcall(function() bad() end)
          print(ok)|}
        "defined ok\nfalse");
    quick "monotonic: link error then success" (expect "t"
        {|terra helper :: {int} -> int
          terra f(x : int) : int return helper(x) + 1 end
          local ok1 = pcall(function() f(1) end)
          terra helper(x : int) : int return x * 2 end
          local ok2, v = pcall(function() return f(20) end)
          print(ok1, ok2, v)|}
        "false\ttrue\t41");
    quick "redefinition is rejected" (expect "t"
        {|terra f() : int return 1 end
          local ok = pcall(function()
            terra f() : int return 2 end
          end)
          print(ok, f())|}
        "false\t1");
    quick "recursive fn needs annotation"
      (expect_diag "rec" ~phase:Diag.Typecheck ~code:"tc.error"
         "terra f(n : int) return f(n) end print(f(0))");
    quick "return type inference" (expect "t"
        {|terra f(x : int) return x * 2.5 end
          print(f(4), f:gettype().returntype == double)|}
        "10\ttrue");
    quick "int promotion int+double" (expect "t"
        {|terra f(a : int, b : double) : double return a + b end
          print(f(1, 0.5))|}
        "1.5");
    quick "int widths promote" (expect "t"
        {|terra f(a : int8, b : int64) : int64 return a + b end
          print(f(100, 1000000))|}
        "1000100");
    quick "narrowing requires explicit cast"
      (expect_diag "narrow" ~phase:Diag.Typecheck ~code:"tc.error"
         "terra f(a : int64) : int return a end print(f(1))");
    quick "explicit casts" (expect "t"
        {|terra f(x : double) : int return [int](x) end
          print(f(3.99), f(-2.99))|}
        "3\t-2");
    quick "bool required in conditions"
      (expect_diag "cond" ~phase:Diag.Typecheck ~code:"tc.error"
         "terra f(x : int) : int if x then return 1 end return 0 end print(f(1))");
    quick "pointer arithmetic types" (expect "t"
        {|local std = terralib.includec("stdlib.h")
          terra f() : int64
            var p = [&int](std.malloc(64))
            var q = p + 5
            var d = q - p
            std.free([&uint8](p))
            return d
          end
          print(f())|}
        "5");
    quick "assignment to rvalue rejected"
      (expect_diag "lv" ~phase:Diag.Typecheck ~code:"tc.error"
         "terra f() : int 3 = 4 return 0 end print(f())");
    quick "wrong arity rejected"
      (expect_diag "arity" ~phase:Diag.Typecheck ~code:"tc.error"
         "terra g(x : int) : int return x end terra f() : int return g(1, 2) end print(f())");
    quick "missing field rejected at first call" (expect "nofield"
        {|struct S { x : int }
          terra f(s : S) : int return s.y end
          print((pcall(function() return f({ x = 1 }) end)))|}
        "false");
    quick "user __cast conversion" (expect "t"
        {|struct Complex { re : float; im : float }
          Complex.metamethods.__cast = function(from, to, exp)
            if from == float and to == Complex then
              return `Complex { exp, 0.f }
            end
            error("invalid conversion")
          end
          terra add(a : Complex, b : Complex) : float
            return a.re + b.re + a.im + b.im
          end
          terra f() : float
            var x : float = 1.5f
            return add(x, Complex { 2.5f, 1.f })  -- x converts implicitly
          end
          print(f())|}
        "5");
  ]

(* ------------------------------------------------------------------ *)
(* Compilation and execution: whole surface programs *)

let exec_tests =
  [
    quick "control flow mix" (expect "x"
        {|terra collatz(n : int) : int
            var steps = 0
            while n ~= 1 do
              if n % 2 == 0 then n = n / 2
              else n = 3 * n + 1 end
              steps = steps + 1
            end
            return steps
          end
          print(collatz(27))|}
        "111");
    quick "repeat and break" (expect "x"
        {|terra f() : int
            var i = 0
            repeat
              i = i + 1
              if i == 7 then break end
            until i > 100
            return i
          end
          print(f())|}
        "7");
    quick "negative for step" (expect "x"
        {|terra f() : int
            var s = 0
            for i = 10, 0, -2 do s = s + i end
            return s
          end
          print(f())|}
        "30");
    quick "multi-assign uses old values" (expect "x"
        {|terra f() : int
            var a, b = 3, 4
            a, b = b, a
            return a * 10 + b
          end
          print(f())|}
        "43");
    quick "arrays on the stack" (expect "x"
        {|terra f() : int
            var a : int[8]
            for i = 0, 8 do a[i] = i * i end
            var s = 0
            for i = 0, 8 do s = s + a[i] end
            return s
          end
          print(f())|}
        "140");
    quick "struct by value argument" (expect "x"
        {|struct V2 { x : double; y : double }
          terra dot(a : V2, b : V2) : double
            return a.x * b.x + a.y * b.y
          end
          terra f() : double
            var a = V2 { 1.0, 2.0 }
            return dot(a, V2 { 3.0, 4.0 })
          end
          print(f())|}
        "11");
    quick "struct by value return" (expect "x"
        {|struct V2 { x : double; y : double }
          terra mk(x : double, y : double) : V2
            return V2 { x, y }
          end
          terra f() : double
            var v = mk(5.0, 7.0)
            return v.x * v.y
          end
          print(f())|}
        "35");
    quick "mutating a by-value param stays local" (expect "x"
        {|struct B { n : int }
          terra bump(b : B) : int b.n = b.n + 1 return b.n end
          terra f() : int
            var b = B { 10 }
            var r = bump(b)
            return r * 100 + b.n
          end
          print(f())|}
        "1110");
    quick "methods with self pointer mutate" (expect "x"
        {|struct Counter { n : int }
          terra Counter:inc() : {} self.n = self.n + 1 end
          terra Counter:get() : int return self.n end
          terra f() : int
            var c = Counter { 0 }
            c:inc() c:inc() c:inc()
            return c:get()
          end
          print(f())|}
        "3");
    quick "function pointers" (expect "x"
        {|terra twice(x : int) : int return x * 2 end
          terra thrice(x : int) : int return x * 3 end
          terra apply(f : {int} -> int, x : int) : int return f(x) end
          terra g() : int return apply(twice, 10) + apply(thrice, 10) end
          print(g())|}
        "50");
    quick "globals persist across calls" (expect "x"
        {|local g = global(int64, 100)
          terra bump() : int64 g = g + 1 return g end
          bump() bump()
          print(bump(), g:get())
          g:set(0)
          print(bump())|}
        "103\t103\n1");
    quick "vectors end to end" (expect "x"
        {|terra f() : float
            var a = [vector(float, 4)](2.f)
            var b = [vector(float, 4)](0.f)
            b = a * a + a
            var buf : float[4]
            @([&vector(float, 4)](&buf[0])) = b
            return buf[0] + buf[1] + buf[2] + buf[3]
          end
          print(f())|}
        "24");
    quick "string literals are C strings" (expect "x"
        {|local std = terralib.includec("stdio.h")
          terra f() : {} std.puts("hello from terra") end
          f()|}
        "hello from terra");
    quick "deep call chains" (expect "x"
        {|terra a(x : int) : int return x + 1 end
          terra b(x : int) : int return a(x) * 2 end
          terra c(x : int) : int return b(x) + a(x) end
          terra d(x : int) : int return c(b(a(x))) end
          print(d(1))|}
        "21");
    quick "uint64 division is unsigned" (expect "x"
        {|terra f() : bool
            var x : uint64 = [uint64](0) - [uint64](2)  -- 2^64 - 2
            var u = x / [uint64](2)                     -- huge when unsigned
            var s = [int64](x) / [int64](2)             -- -1 when signed
            return u > [uint64](1000000) and s < [int64](0)
          end
          print(f())|}
        "true");
    quick "methods via the methods table (paper syntax)" (expect "x"
        {|struct Vec { x : double; y : double }
          Vec.methods.dot = terra(self : &Vec, o : &Vec) : double
            return self.x * o.x + self.y * o.y
          end
          terra f() : double
            var a = Vec { 1.0, 2.0 }
            var b = Vec { 3.0, 4.0 }
            return a:dot(&b)
          end
          print(f())|}
        "11");
    quick "nested quotes through helper functions" (expect "x"
        {|local function scaled(e, k)
            return `e * k
          end
          local function twice(e)
            return `[scaled(e, 2)] + [scaled(e, 2)]
          end
          terra f(x : int) : int
            return [twice(x)]
          end
          print(f(5))|}
        "20");
    quick "terra functions stored in lua tables" (expect "x"
        {|local ops = {}
          ops.add = terra(a : int, b : int) : int return a + b end
          ops.mul = terra(a : int, b : int) : int return a * b end
          terra f(x : int) : int
            return ops.add(x, 1) + ops.mul(x, 10)
          end
          print(f(4))|}
        "45");
    quick "while with complex condition" (expect "x"
        {|terra gcd(a : int, b : int) : int
            while b ~= 0 do
              a, b = b, a % b
            end
            return a
          end
          print(gcd(252, 105), gcd(7, 13))|}
        "21	1");
    quick "early return from nested loops" (expect "x"
        {|terra find(p : &int, n : int, needle : int) : int
            for i = 0, n do
              if p[i] == needle then return i end
            end
            return -1
          end
          terra f() : int
            var a : int[5]
            for i = 0, 5 do a[i] = i * i end
            return find(&a[0], 5, 9) * 10 + find(&a[0], 5, 7)
          end
          print(f())|}
        "29");
    quick "laplace from section 2" (fun () ->
        let out =
          run
            {|local std = terralib.includec("stdlib.h")
              function Image(PixelType)
                struct ImageImpl { data : &PixelType; N : int; }
                terra ImageImpl:init(N : int) : {}
                  self.data = [&PixelType](std.malloc(N * N * [terralib.sizeof(PixelType)]))
                  self.N = N
                end
                terra ImageImpl:get(x : int, y : int) : PixelType
                  return self.data[x * self.N + y]
                end
                terra ImageImpl:set(x : int, y : int, v : PixelType) : {}
                  self.data[x * self.N + y] = v
                end
                return ImageImpl
              end
              local GreyscaleImage = Image(float)
              terra laplace(img : &GreyscaleImage, out : &GreyscaleImage) : {}
                var newN = img.N - 2
                out:init(newN)
                for i = 0, newN do
                  for j = 0, newN do
                    var v = img:get(i+0,j+1) + img:get(i+2,j+1)
                          + img:get(i+1,j+2) + img:get(i+1,j+0)
                          - 4 * img:get(i+1,j+1)
                    out:set(i,j,v)
                  end
                end
              end
              terra go() : float
                var i = GreyscaleImage {}
                var o = GreyscaleImage {}
                i:init(16)
                for x = 0, 16 do for y = 0, 16 do
                  i:set(x, y, [float](x * x + y))
                end end
                laplace(&i, &o)
                var s = 0.f
                for x = 0, 14 do for y = 0, 14 do s = s + o:get(x, y) end end
                return s
              end
              print(go())|}
        in
        (* laplacian of x^2 + y is 2 everywhere: 14 * 14 * 2 = 392 *)
        checks "laplace checksum" "392" out);
    quick "blockedloop equals plain loop" (expect "x"
        {|terra min(a : int64, b : int64) : int64
            if a < b then return a else return b end
          end
          local function blockedloop(N, blocksizes, bodyfn)
            local function generatelevel(n, ii, jj, bb)
              if n > #blocksizes then return bodyfn(ii, jj) end
              local blocksize = blocksizes[n]
              return quote
                for i = ii, min(ii + bb, N), blocksize do
                  for j = jj, min(jj + bb, N), blocksize do
                    [ generatelevel(n + 1, i, j, blocksize) ]
                  end
                end
              end
            end
            return generatelevel(1, 0, 0, N)
          end
          local acc1 = global(int64, 0)
          local acc2 = global(int64, 0)
          terra blocked() : {}
            [ blockedloop(17, {8, 4, 1}, function(i, j)
                return quote acc1 = acc1 + i * 1000 + j end
              end) ]
          end
          terra plain() : {}
            for i = 0, 17 do for j = 0, 17 do
              acc2 = acc2 + i * 1000 + j
            end end
          end
          blocked() plain()
          print(acc1:get() == acc2:get(), acc1:get() ~= 0)|}
        "true\ttrue");
  ]

(* ------------------------------------------------------------------ *)
(* FFI and separate evaluation *)

let ffi_tests =
  [
    quick "lua numbers cross the boundary" (expect "f"
        {|terra f(a : int, b : double, c : bool) : double
            if c then return a + b end
            return a - b
          end
          print(f(10, 2.5, true), f(10, 2.5, false))|}
        "12.5\t7.5");
    quick "lua strings become rawstring" (expect "f"
        {|terra strlen(s : rawstring) : int
            var n = 0
            while s[n] ~= 0 do n = n + 1 end
            return n
          end
          print(strlen("four"), strlen(""))|}
        "4\t0");
    quick "tables convert to structs" (expect "f"
        {|struct P { x : double; y : double }
          terra norm2(p : P) : double return p.x * p.x + p.y * p.y end
          print(norm2({ x = 3, y = 4 }))|}
        "25");
    quick "cdata structs returned by value readable from lua" (expect "f"
        {|struct P { x : double; y : double }
          terra mk() : P return P { 6.0, 7.0 } end
          local p = mk()
          print(p.x * p.y)|}
        "42");
    quick "terralib.cast wraps lua functions" (expect "f"
        {|local calls = {}
          local cb = terralib.cast({int} -> int, function(x)
            calls[#calls + 1] = x
            return x * 2
          end)
          terra f(x : int) : int return cb(x) + cb(x + 1) end
          print(f(5))
          print(#calls, calls[1], calls[2])|}
        "22\n2\t5\t6");
    quick "saveobj roundtrip without lua" (fun () ->
        let e = Engine.create () in
        let path = Filename.temp_file "terra_test" ".tobj" in
        ignore
          (Engine.run e
             (Printf.sprintf
                {|local K = 6
                  terra mulk(x : int64) : int64 return x * K end
                  terra callmulk(x : int64) : int64 return mulk(x) + 1 end
                  terralib.saveobj(%S, { mulk = mulk, callmulk = callmulk })|}
                path));
        let obj = Objfile.load_file path in
        Sys.remove path;
        let vm, exports = Objfile.instantiate obj in
        checkb "exports" true
          (List.mem_assoc "mulk" exports && List.mem_assoc "callmulk" exports);
        (match
           Tvm.Vm.call vm (List.assoc "callmulk" exports) [| Tvm.Vm.VI 7L |]
         with
        | Tvm.Vm.VI v -> Alcotest.(check int64) "runs standalone" 43L v
        | _ -> Alcotest.fail "int expected"));
    quick "separate context per engine" (fun () ->
        let e1 = Engine.create () in
        let e2 = Engine.create () in
        ignore (Engine.run e1 "terra f() : int return 1 end");
        ignore (Engine.run e2 "terra f() : int return 2 end");
        let o1, _ = Engine.run_capture e1 "print(f())" in
        let o2, _ = Engine.run_capture e2 "print(f())" in
        checks "e1" "1" (String.trim o1);
        checks "e2" "2" (String.trim o2));
  ]

(* ------------------------------------------------------------------ *)
(* Object-file hardening: a .tobj from disk is hostile input.  Framing
   damage (bit flips, truncation) and structurally invalid objects that
   pass the framing must both surface as structured [obj.bad-file]
   diagnostics — never an exception, never an out-of-range VM access. *)

let save_tobj () =
  let e = Engine.create () in
  let path = Filename.temp_file "terra_fuzz" ".tobj" in
  ignore
    (Engine.run e
       (Printf.sprintf
          {|local K = 6
            terra mulk(x : int64) : int64 return x * K end
            terra callmulk(x : int64) : int64 return mulk(x) + 1 end
            terralib.saveobj(%S, { mulk = mulk, callmulk = callmulk })|}
          path));
  let ic = open_in_bin path in
  let blob = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  blob

let expect_bad_file what data =
  let path = Filename.temp_file "terra_fuzz" ".tobj" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc data;
      close_out oc;
      match Objfile.load_file path with
      | _ -> Alcotest.failf "%s loaded as a valid object" what
      | exception Diag.Error d ->
          checks (what ^ ": code") "obj.bad-file" d.Diag.code)

let hostile_obj ?(exports = [ ("f", 0) ]) ?(imports = [||]) ?(statics = "")
    ?(relocs = []) funcs =
  let path = Filename.temp_file "terra_fuzz" ".tobj" in
  let oc = open_out_bin path in
  Objfile.write_channel oc
    {
      Objfile.o_funcs = Array.of_list funcs;
      o_imports = imports;
      o_exports = exports;
      o_statics = statics;
      o_statics_len = String.length statics;
      o_relocs = relocs;
    };
  close_out oc;
  let ic = open_in_bin path in
  let blob = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  blob

let ret0 = { Tvm.Ir.fname = "f"; nparams = 0; nregs = 1; frame_bytes = 0;
             code = [| Tvm.Ir.Ret None |] }

let objfile_tests =
  [
    quick "bit flips anywhere in a .tobj are structured failures"
      (fun () ->
        let blob = save_tobj () in
        let len = String.length blob in
        checkb "the object is not trivial" true (len > 200);
        (* deterministic sweep: ~60 positions spread over header, digest,
           and payload; every flip must be caught by the framing *)
        for i = 0 to 59 do
          let off = i * len / 60 in
          let b = Bytes.of_string blob in
          Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x40));
          expect_bad_file
            (Printf.sprintf "flip at byte %d" off)
            (Bytes.to_string b)
        done);
    quick "truncated .tobj prefixes are structured failures" (fun () ->
        let blob = save_tobj () in
        let len = String.length blob in
        List.iter
          (fun keep ->
            expect_bad_file
              (Printf.sprintf "prefix of %d bytes" keep)
              (String.sub blob 0 keep))
          [ 0; 1; 5; 9; 10; 14; 18; 33; 34; len / 2; len - 1 ]);
    quick "structurally hostile objects are rejected after framing"
      (fun () ->
        let func code = { ret0 with Tvm.Ir.code = Array.of_list code } in
        expect_bad_file "no functions" (hostile_obj ~exports:[] []);
        expect_bad_file "export id out of range"
          (hostile_obj ~exports:[ ("f", 3) ] [ ret0 ]);
        expect_bad_file "call target out of range"
          (hostile_obj
             [ func [ Tvm.Ir.Call (None, 5, []); Tvm.Ir.Ret None ] ]);
        expect_bad_file "jump past the end"
          (hostile_obj [ func [ Tvm.Ir.Jmp 99 ] ]);
        expect_bad_file "negative jump"
          (hostile_obj [ func [ Tvm.Ir.Jmp (-1) ] ]);
        expect_bad_file "body without a terminator"
          (hostile_obj [ func [ Tvm.Ir.Mov (0, Tvm.Ir.Ki 0L) ] ]);
        expect_bad_file "register out of range"
          (hostile_obj [ func [ Tvm.Ir.Mov (7, Tvm.Ir.Ki 0L);
                                Tvm.Ir.Ret None ] ]);
        expect_bad_file "ccall import out of range"
          (hostile_obj [ func [ Tvm.Ir.Ccall (None, 2, []);
                                Tvm.Ir.Ret None ] ]);
        expect_bad_file "reloc outside the statics"
          (hostile_obj ~statics:"abcd" ~relocs:[ (100, 0) ] [ ret0 ]);
        expect_bad_file "statics beyond the region"
          (hostile_obj ~statics:(String.make (1 lsl 20) 'x') [ ret0 ]);
        (* and a well-formed hand-built object still loads *)
        let path = Filename.temp_file "terra_fuzz" ".tobj" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out_bin path in
            Objfile.write_channel oc
              {
                Objfile.o_funcs = [| ret0 |];
                o_imports = [||];
                o_exports = [ ("f", 0) ];
                o_statics = "";
                o_statics_len = 0;
                o_relocs = [];
              };
            close_out oc;
            let obj = Objfile.load_file path in
            checki "valid hand-built object loads" 1
              (Array.length obj.Objfile.o_funcs)));
  ]

(* ------------------------------------------------------------------ *)
(* qcheck properties over the whole pipeline *)

let prop_staged_constants =
  QCheck.Test.make ~count:50 ~name:"staged lua constants come back exact"
    QCheck.(int_range (-1000000) 1000000)
    (fun k ->
      run
        (Printf.sprintf
           "local k = %d terra f() : int64 return k end print(f())" k)
      = string_of_int k)

let prop_int_expr =
  (* random arithmetic over ints evaluates the same in Terra and OCaml *)
  let gen =
    QCheck.make
      QCheck.Gen.(
        let leaf = map (fun n -> `K n) (int_range (-50) 50) in
        let rec expr n =
          if n = 0 then leaf
          else
            frequency
              [
                (1, leaf);
                (2, map2 (fun a b -> `Add (a, b)) (expr (n - 1)) (expr (n - 1)));
                (2, map2 (fun a b -> `Sub (a, b)) (expr (n - 1)) (expr (n - 1)));
                (1, map2 (fun a b -> `Mul (a, b)) (expr (n - 1)) (expr (n - 1)));
              ]
        in
        expr 4)
  in
  let rec to_terra = function
    | `K n -> Printf.sprintf "[int64](%d)" n
    | `Add (a, b) -> Printf.sprintf "(%s + %s)" (to_terra a) (to_terra b)
    | `Sub (a, b) -> Printf.sprintf "(%s - %s)" (to_terra a) (to_terra b)
    | `Mul (a, b) -> Printf.sprintf "(%s * %s)" (to_terra a) (to_terra b)
  in
  let rec eval = function
    | `K n -> Int64.of_int n
    | `Add (a, b) -> Int64.add (eval a) (eval b)
    | `Sub (a, b) -> Int64.sub (eval a) (eval b)
    | `Mul (a, b) -> Int64.mul (eval a) (eval b)
  in
  QCheck.Test.make ~count:40 ~name:"terra int arithmetic = ocaml" gen (fun e ->
      run
        (Printf.sprintf "terra f() : int64 return %s end print(f())"
           (to_terra e))
      = Int64.to_string (eval e))

let prop_specialization_deterministic =
  QCheck.Test.make ~count:20 ~name:"same program, same output" QCheck.int
    (fun seed ->
      let src =
        Printf.sprintf
          {|local k = %d
            terra f(x : int) : int return x * k + 1 end
            print(f(3))|}
          (seed mod 1000)
      in
      run src = run src)

(* ------------------------------------------------------------------ *)
(* Protected execution: structured diagnostics, spans, resource guards *)

let run_lua src =
  (* helper: run Lua that inspects a caught diagnostic value *)
  expect "diag" src

let diag_tests =
  [
    quick "diagnostic carries the offending line"
      (expect_diag "span" ~phase:Diag.Specialize ~code:"spec.error" ~line:5
         "local x = 1\nlocal y = 2\nterra f() : int\n  var a = 1\n  return neverdefined\nend");
    quick "typecheck diagnostic carries the offending line"
      (expect_diag "tc span" ~phase:Diag.Typecheck ~code:"tc.error" ~line:4
         "local x = 1\nterra f() : int\n  var a = 1\n  var b : bool = a\n  return 0\nend\nprint(f())");
    quick "parse error carries the line"
      (expect_diag "parse span" ~phase:Diag.Parse ~code:"parse.error" ~line:2
         "local ok = 1\nterra f( : int return 1 end");
    quick "lua runtime error becomes an eval diagnostic"
      (expect_diag "lua" ~phase:Diag.Eval ~code:"lua.error"
         "local function g() error('boom') end g()");
    quick "integer division by zero is a catchable trap"
      (expect_diag "div0" ~phase:Diag.Run ~code:"trap.divzero"
         "terra f(a : int, b : int) : int return a / b end print(f(1, 0))");
    quick "infinite terra loop returns trap.fuel within budget" (fun () ->
        let e = Engine.create ~mem_bytes:(32 * 1024 * 1024) ~fuel:100_000 () in
        match
          Engine.run_protected e "terra spin() while true do end end spin()"
        with
        | Ok _ -> Alcotest.fail "expected trap.fuel"
        | Error d ->
            checks "code" "trap.fuel" d.Diag.code;
            checkb "is_trap" true (Diag.is_trap d));
    quick "runaway lua loop returns trap.steps" (fun () ->
        let e =
          Engine.create ~mem_bytes:(32 * 1024 * 1024) ~lua_steps:10_000 ()
        in
        match Engine.run_protected e "while true do end" with
        | Ok _ -> Alcotest.fail "expected trap.steps"
        | Error d -> checks "code" "trap.steps" d.Diag.code);
    quick "lua recursion hits the depth guard catchably"
      (expect_diag "depth" ~phase:Diag.Eval ~code:"lua.error"
         "local function g() return g() end g()");
    quick "terra recursion hits the VM depth guard" (fun () ->
        let e =
          Engine.create ~mem_bytes:(32 * 1024 * 1024) ~max_call_depth:100 ()
        in
        match
          Engine.run_protected e
            "terra f(n : int) : int return f(n + 1) end print(f(0))"
        with
        | Ok _ -> Alcotest.fail "expected trap.stack"
        | Error d -> checks "code" "trap.stack" d.Diag.code);
    quick "diagnostic records the lua traceback" (fun () ->
        let e = Engine.create ~mem_bytes:(32 * 1024 * 1024) () in
        match
          Engine.run_protected e
            "local function inner() error('deep') end\n\
             local function outer() inner() end\n\
             outer()"
        with
        | Ok _ -> Alcotest.fail "expected a diagnostic"
        | Error d ->
            let names = List.map (fun fr -> fr.Diag.fr_name) d.Diag.lua_traceback in
            checkb "has inner" true (List.mem "inner" names);
            checkb "has outer" true (List.mem "outer" names));
    quick "file name threads into the span" (fun () ->
        let e = Engine.create ~mem_bytes:(32 * 1024 * 1024) () in
        match
          Engine.run_protected e ~file:"prog.t"
            "terra f() : int return neverdefined end"
        with
        | Ok _ -> Alcotest.fail "expected a diagnostic"
        | Error d -> (
            match d.Diag.span with
            | Some (f, _) -> checks "file" "prog.t" f
            | None -> Alcotest.fail "no span"));
    quick "pcall observes a terra type error with phase and line"
      (run_lua
         {|terra bad() : int
             return 1.5 > 2.0
           end
           local ok, err = pcall(function() bad() end)
           print(ok, err.phase, err.code, err.line)|}
         "false\ttypecheck\ttc.error\t2");
    quick "pcall observes a runtime trap as a structured value"
      (run_lua
         {|terra div(a : int, b : int) : int return a / b end
           local ok, err = pcall(function() return div(1, 0) end)
           print(ok, err.phase, err.code)|}
         "false\trun\ttrap.divzero");
    quick "pcall error value renders via tostring"
      (run_lua
         {|terra bad() : int return 1.5 > 2.0 end
           local ok, err = pcall(function() bad() end)
           print(ok, string.sub(tostring(err), 1, 8))|}
         "false\t<input>:");
    quick "lua error() interop still passes plain values through pcall"
      (run_lua
         {|local ok, v = pcall(function() error("plain") end)
           print(ok, v)|}
         "false\tplain");
    quick "exit codes: one_line machine format is stable" (fun () ->
        let e = Engine.create ~mem_bytes:(32 * 1024 * 1024) ~fuel:50_000 () in
        match
          Engine.run_protected e ~file:"spin.t"
            "terra spin() while true do end end spin()"
        with
        | Ok _ -> Alcotest.fail "expected trap"
        | Error d ->
            checks "one_line" "run|trap.fuel|spin.t:1|fuel exhausted"
              (Diag.one_line d));
  ]

(* Fuzz the protected boundary: random program text must always come back
   as Ok or Error Diag — never an exception, never a hang (all engines are
   resource-bounded). *)
let prop_protected_never_raises =
  let fragments =
    [|
      "terra f() : int return 1 end";
      "print(f())";
      "local x = ";
      "42";
      "end";
      "terra";
      "while true do";
      "[";
      "]";
      "f(";
      ")";
      "var x : int = 1";
      "error('x')";
      "\"unterminated";
      "struct S { x : int }";
      "@";
      "+ - */";
      "return";
      "function g()";
      "local t = {}";
      "t[1] = t";
      "0x";
      "1e999";
      ";;";
      "..";
    |]
  in
  let gen_src =
    QCheck.Gen.(
      frequency
        [
          (* token soup from plausible fragments *)
          ( 4,
            map (String.concat " ")
              (list_size (int_range 0 12)
                 (map (Array.get fragments) (int_range 0 (Array.length fragments - 1)))) );
          (* raw bytes *)
          (1, string_size ~gen:(char_range '\032' '\126') (int_range 0 80));
          (* a valid program, mutated by truncation *)
          ( 2,
            map
              (fun n ->
                let p =
                  "local k = 3 terra f(x : int) : int return x * k end \
                   print(f(7))"
                in
                String.sub p 0 (min n (String.length p)))
              (int_range 0 64) );
        ])
  in
  QCheck.Test.make ~count:60 ~name:"run_protected never raises"
    (QCheck.make gen_src) (fun src ->
      let e =
        Engine.create ~mem_bytes:(4 * 1024 * 1024) ~fuel:200_000
          ~lua_steps:50_000 ~max_call_depth:64 ()
      in
      match Engine.run_capture_protected e src with
      | _, Ok _ -> true
      | _, Error _ -> true)

let () =
  Alcotest.run "terra"
    [
      ("types", types_tests);
      ("specialize", spec_tests);
      ("typecheck", typecheck_tests);
      ("execute", exec_tests);
      ("ffi", ffi_tests);
      ("objfile", objfile_tests);
      ("diagnostics", diag_tests);
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_staged_constants;
          QCheck_alcotest.to_alcotest prop_int_expr;
          QCheck_alcotest.to_alcotest prop_specialization_deterministic;
          QCheck_alcotest.to_alcotest prop_protected_never_raises;
        ] );
    ]
