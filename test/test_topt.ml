(* Topt optimizer tests: CFG round-trips, individual pass behaviour,
   sanitizer-awareness, and — the load-bearing guarantee — differential
   execution: every golden program and a fuzzed program set must behave
   byte-identically at --opt=0 and --opt=2. *)

module Ir = Tvm.Ir
module Vm = Tvm.Vm

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let new_vm () =
  let vm =
    Vm.create ~mem_bytes:(16 * 1024 * 1024)
      (Tmachine.Machine.create Tmachine.Config.test_tiny)
  in
  Tvm.Builtins.install vm;
  vm

let mk_func ?(nparams = 0) ?(nregs = 8) code =
  { Ir.fname = "t"; nparams; nregs; frame_bytes = 0; code }

let run_func f args =
  let vm = new_vm () in
  let id = Vm.add_func vm f in
  Vm.call vm id args

(* retired instructions for one call *)
let steps_of f args =
  let vm = new_vm () in
  let id = Vm.add_func vm f in
  let s0 = Vm.steps vm in
  let v = Vm.call vm id args in
  (v, Vm.steps vm - s0)

let opt ?(level = 2) ?(checked = false) f =
  Topt.Pipeline.optimize ~level ~checked f

(* ------------------------------------------------------------------ *)
(* CFG round-trip *)

let test_cfg_roundtrip_diamond () =
  let f =
    mk_func ~nparams:1
      [|
        Ir.Br (Ir.R 0, 1, 3);
        Ir.Mov (1, Ir.Ki 10L);
        Ir.Jmp 4;
        Ir.Mov (1, Ir.Ki 20L);
        Ir.Ret (Some (Ir.R 1));
      |]
  in
  let g = Topt.Cfg.to_func (Topt.Cfg.of_func f) in
  List.iter
    (fun x ->
      let expect = run_func f [| Vm.VI x |] in
      let got = run_func g [| Vm.VI x |] in
      checkb "same result" true (expect = got))
    [ 0L; 1L ]

let test_cfg_roundtrip_loop () =
  (* sum 0..n-1 with a self-contained while loop *)
  let f =
    mk_func ~nparams:1
      [|
        Ir.Mov (1, Ir.Ki 0L);
        Ir.Mov (2, Ir.Ki 0L);
        Ir.Ibin (Ir.Lts, 3, Ir.R 2, Ir.R 0);
        Ir.Br (Ir.R 3, 4, 7);
        Ir.Ibin (Ir.Add, 1, Ir.R 1, Ir.R 2);
        Ir.Ibin (Ir.Add, 2, Ir.R 2, Ir.Ki 1L);
        Ir.Jmp 2;
        Ir.Ret (Some (Ir.R 1));
      |]
  in
  let cfg = Topt.Cfg.of_func f in
  let g = Topt.Cfg.to_func cfg in
  checkb "roundtrip equal code" true (g.Ir.code = f.Ir.code);
  checkb "same sum" true
    (run_func f [| Vm.VI 10L |] = run_func g [| Vm.VI 10L |])

let test_cfg_unsupported_bails () =
  (* branch target out of range: optimizer must leave it alone *)
  let f = mk_func [| Ir.Jmp 99 |] in
  checkb "identity" true (opt f == f)

let test_cfg_merge_chain () =
  (* regression: a constant branch folds this into a straight A→B→C
     chain; merging B into A and then visiting the already-removed B in
     the same round used to delete C while A still jumped to it, making
     to_func raise Unsupported out of the pipeline *)
  let f =
    mk_func ~nparams:1
      [|
        Ir.Mov (1, Ir.Ki 5L);
        Ir.Ibin (Ir.Lts, 2, Ir.R 1, Ir.Ki 12L);
        Ir.Br (Ir.R 2, 3, 5);
        Ir.Mov (1, Ir.R 0);
        Ir.Jmp 5;
        Ir.Ret (Some (Ir.R 1));
        Ir.Ret None;
      |]
  in
  let g = opt f in
  List.iter
    (fun x ->
      checkb "same result" true
        (run_func f [| Vm.VI x |] = run_func g [| Vm.VI x |]))
    [ -8L; 0L; 42L ]

(* ------------------------------------------------------------------ *)
(* Individual passes *)

let test_fold_constants () =
  let f =
    mk_func
      [|
        Ir.Mov (0, Ir.Ki 3L);
        Ir.Ibin (Ir.Mul, 1, Ir.R 0, Ir.Ki 4L);
        Ir.Ibin (Ir.Add, 2, Ir.R 1, Ir.Ki 2L);
        Ir.Ret (Some (Ir.R 2));
      |]
  in
  let g = opt ~level:1 f in
  checkb "result" true (run_func g [||] = Vm.VI 14L);
  checki "folds to a single ret" 1 (Array.length g.Ir.code)

let test_fold_preserves_divzero () =
  let f =
    mk_func
      [| Ir.Ibin (Ir.Divs, 0, Ir.Ki 1L, Ir.Ki 0L); Ir.Ret (Some (Ir.R 0)) |]
  in
  let g = opt f in
  checkb "still traps" true
    (match run_func g [||] with
    | exception Vm.Trap _ -> true
    | _ -> false)

let test_peephole_strength_reduction () =
  let f =
    mk_func ~nparams:1
      [| Ir.Ibin (Ir.Mul, 1, Ir.R 0, Ir.Ki 8L); Ir.Ret (Some (Ir.R 1)) |]
  in
  let g = opt ~level:1 f in
  checkb "mul by 8 becomes shl 3" true
    (Array.exists
       (function Ir.Ibin (Ir.Shl, _, _, Ir.Ki 3L) -> true | _ -> false)
       g.Ir.code);
  checkb "value" true (run_func g [| Vm.VI 5L |] = Vm.VI 40L)

let test_lea_merge () =
  (* base+i*16 then +8: struct-field-after-index addressing *)
  let f =
    mk_func ~nparams:2
      [|
        Ir.Lea (2, Ir.R 0, Ir.R 1, 16, 0);
        Ir.Lea (3, Ir.R 2, Ir.Ki 0L, 0, 8);
        Ir.Ret (Some (Ir.R 3));
      |]
  in
  let g = opt f in
  checkb "one lea survives" true
    (Array.length g.Ir.code = 2
    && run_func g [| Vm.VI 1000L; Vm.VI 3L |] = Vm.VI 1056L)

let test_dce_removes_dead () =
  let f =
    mk_func ~nparams:1
      [|
        Ir.Fbin (Ir.Fk64, Ir.FMul, 1, Ir.Kf 3.0, Ir.Kf 4.0);
        Ir.Ibin (Ir.Add, 2, Ir.R 0, Ir.Ki 1L);
        Ir.Ret (Some (Ir.R 2));
      |]
  in
  let g = opt ~level:1 f in
  checkb "dead fmul gone" true
    (not
       (Array.exists (function Ir.Fbin _ -> true | _ -> false) g.Ir.code));
  checkb "value" true (run_func g [| Vm.VI 9L |] = Vm.VI 10L)

let test_cse_loads_unchecked_only () =
  (* two identical loads: merged when unchecked, both kept under the
     sanitizer so every access stays visible to the shadow map *)
  let f =
    mk_func ~nparams:1
      [|
        Ir.Load (Ir.I64, 1, Ir.R 0);
        Ir.Load (Ir.I64, 2, Ir.R 0);
        Ir.Ibin (Ir.Add, 3, Ir.R 1, Ir.R 2);
        Ir.Ret (Some (Ir.R 3));
      |]
  in
  let count_loads g =
    Array.fold_left
      (fun n i -> match i with Ir.Load _ -> n + 1 | _ -> n)
      0 g.Ir.code
  in
  let unchecked = opt ~checked:false f in
  let checked = opt ~checked:true f in
  checki "unchecked merges the load" 1 (count_loads unchecked);
  checki "checked keeps both" 2 (count_loads checked);
  let vm = new_vm () in
  let addr = Tvm.Alloc.malloc vm.Vm.alloc 8 in
  Tvm.Mem.set_i64 vm.Vm.mem addr 21L;
  let run g =
    let id = Vm.add_func vm g in
    Vm.call vm id [| Vm.VI (Int64.of_int addr) |]
  in
  checkb "same value" true (run unchecked = Vm.VI 42L && run checked = Vm.VI 42L)

let test_cse_store_barrier () =
  (* a store between the loads kills the available expression *)
  let f =
    mk_func ~nparams:1
      [|
        Ir.Load (Ir.I64, 1, Ir.R 0);
        Ir.Store (Ir.I64, Ir.R 0, Ir.Ki 7L);
        Ir.Load (Ir.I64, 2, Ir.R 0);
        Ir.Ibin (Ir.Add, 3, Ir.R 1, Ir.R 2);
        Ir.Ret (Some (Ir.R 3));
      |]
  in
  let g = opt ~checked:false f in
  let loads =
    Array.fold_left
      (fun n i -> match i with Ir.Load _ -> n + 1 | _ -> n)
      0 g.Ir.code
  in
  checki "both loads survive the store" 2 loads;
  let vm = new_vm () in
  let addr = Tvm.Alloc.malloc vm.Vm.alloc 8 in
  Tvm.Mem.set_i64 vm.Vm.mem addr 5L;
  let id = Vm.add_func vm g in
  checkb "reads the stored value" true
    (Vm.call vm id [| Vm.VI (Int64.of_int addr) |] = Vm.VI 12L)

let test_licm_hoists () =
  (* acc += x*2.0 in a counted loop: the multiply is invariant *)
  let f =
    mk_func ~nparams:2
      [|
        Ir.Mov (2, Ir.Ki 0L);
        Ir.Mov (3, Ir.Kf 0.0);
        Ir.Ibin (Ir.Lts, 4, Ir.R 2, Ir.R 0);
        Ir.Br (Ir.R 4, 4, 8);
        Ir.Fbin (Ir.Fk64, Ir.FMul, 5, Ir.R 1, Ir.Kf 2.0);
        Ir.Fbin (Ir.Fk64, Ir.FAdd, 3, Ir.R 3, Ir.R 5);
        Ir.Ibin (Ir.Add, 2, Ir.R 2, Ir.Ki 1L);
        Ir.Jmp 2;
        Ir.Ret (Some (Ir.R 3));
      |]
  in
  let g = opt f in
  let args = [| Vm.VI 50L; Vm.VF 1.5 |] in
  let v0, s0 = steps_of f args in
  let v1, s1 = steps_of g args in
  checkb "same sum" true (v0 = v1);
  checkb "fewer retired instructions" true (s1 < s0 - 40)

let test_stats_populated () =
  let stats = Topt.Stats.create () in
  let f =
    mk_func ~nparams:1
      [|
        Ir.Mov (1, Ir.Ki 2L);
        Ir.Ibin (Ir.Mul, 2, Ir.R 0, Ir.R 1);
        Ir.Mov (3, Ir.R 2);
        Ir.Ret (Some (Ir.R 3));
      |]
  in
  let _ = Topt.Pipeline.optimize ~level:2 ~stats f in
  checki "one function" 1 stats.Topt.Stats.s_funcs;
  checkb "events recorded" true (Topt.Stats.total_events stats > 0);
  checkb "shrank" true (stats.Topt.Stats.s_after < stats.Topt.Stats.s_before)

(* ------------------------------------------------------------------ *)
(* Differential execution: golden programs *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* cwd at test time is _build/default/test; deps in test/dune stage the
   program sources at these relative paths *)
let golden_programs () =
  let dir d =
    Sys.readdir d |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".t")
    |> List.map (Filename.concat d)
    |> List.sort compare
  in
  dir "programs" @ dir "../examples/programs"

let run_at ?(checked = false) ~opt_level src name =
  let e =
    Terrastd.create ~mem_bytes:(64 * 1024 * 1024) ~checked
      ~opt_level ()
  in
  let out, r = Terra.Engine.run_capture_protected e ~file:name src in
  let tag =
    match r with Ok _ -> "ok" | Error d -> "error:" ^ d.Terra.Diag.code
  in
  (out, tag, Terra.Engine.fuel_used e)

let check_differential ?checked path () =
  let src = read_file path in
  let o0, t0, _ = run_at ?checked ~opt_level:0 src path in
  let o2, t2, _ = run_at ?checked ~opt_level:2 src path in
  checks (path ^ " stdout") o0 o2;
  checks (path ^ " result") t0 t2

let golden_cases () =
  List.concat_map
    (fun path ->
      let base = Filename.basename path in
      [
        Alcotest.test_case base `Quick (check_differential path);
        Alcotest.test_case (base ^ " (checked)") `Quick
          (check_differential ~checked:true path);
      ])
    (golden_programs ())

(* ------------------------------------------------------------------ *)
(* Differential execution: fuzzed programs *)

(* Deterministic generated programs: initialized scalars, bounded loops,
   no division — every construct must behave identically at any opt
   level, so stdout and the result tag are compared byte-for-byte. *)
let gen_src (st : Random.State.t) : string =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let ri n = Random.State.int st n in
  let pick a = a.(ri (Array.length a)) in
  let iconst () = string_of_int (ri 41 - 20) in
  let fconst () =
    Printf.sprintf "%.3f" (float_of_int (ri 400 - 200) /. 8.0)
  in
  let rec iexpr d =
    if d = 0 || ri 3 = 0 then pick [| "a"; "b"; "v0"; "v1"; iconst () |]
    else
      "(" ^ iexpr (d - 1) ^ pick [| " + "; " - "; " * " |] ^ iexpr (d - 1) ^ ")"
  in
  let rec fexpr d =
    if d = 0 || ri 3 = 0 then pick [| "x"; "w0"; "w1"; fconst () |]
    else
      "(" ^ fexpr (d - 1) ^ pick [| " + "; " - "; " * " |] ^ fexpr (d - 1) ^ ")"
  in
  let loopn = ref 0 in
  let stmt assigns cond body_expr =
    match ri 4 with
    | 0 -> add "  %s = %s\n" (pick assigns) (body_expr 2)
    | 1 ->
        add "  if %s then %s = %s else %s = %s end\n" (cond ())
          (pick assigns) (body_expr 2) (pick assigns) (body_expr 1)
    | 2 ->
        incr loopn;
        let i = Printf.sprintf "i%d" !loopn in
        add "  var %s = 0\n  while %s < %d do\n    %s = %s\n    %s = %s + 1\n  end\n"
          i i (ri 7) (pick assigns) (body_expr 2) i i
    | _ ->
        add "  for k%d = 0, %d do\n    %s = %s\n  end\n" !loopn (ri 5)
          (pick assigns) (body_expr 2)
  in
  add "terra fi(a : int, b : int) : int\n";
  add "  var v0 = %s\n" (iexpr 2);
  add "  var v1 = %s\n" (iexpr 2);
  let icond () = Printf.sprintf "%s < %s" (iexpr 1) (iexpr 1) in
  for _ = 1 to 2 + ri 3 do
    stmt [| "v0"; "v1" |] icond iexpr
  done;
  add "  return v0 + v1\nend\n";
  add "terra fd(x : double) : double\n";
  add "  var w0 = %s\n" (fexpr 2);
  add "  var w1 = %s\n" (fexpr 2);
  let fcond () = Printf.sprintf "%s < %s" (fexpr 1) (fexpr 1) in
  for _ = 1 to 2 + ri 3 do
    stmt [| "w0"; "w1" |] fcond fexpr
  done;
  add "  return w0 - w1\nend\n";
  add "print(fi(%s, %s))\n" (iconst ()) (iconst ());
  add "print(fd(%s))\n" (fconst ());
  Buffer.contents buf

let prop_fuzz_differential =
  QCheck.Test.make ~count:220 ~name:"fuzzed programs identical at opt 0 vs 2"
    (QCheck.make
       ~print:(fun s -> s)
       (fun st -> gen_src st))
    (fun src ->
      let o0, t0, _ = run_at ~opt_level:0 src "fuzz.t" in
      let o2, t2, _ = run_at ~opt_level:2 src "fuzz.t" in
      if o0 <> o2 || t0 <> t2 then
        QCheck.Test.fail_reportf "opt0: %s %S@.opt2: %s %S" t0 o0 t2 o2
      else true)

(* ------------------------------------------------------------------ *)
(* Acceptance: fuel reduction and optstats on real workloads *)

let test_mandelbrot_fuel_reduction () =
  let src = read_file "../examples/programs/mandelbrot.t" in
  let o0, t0, f0 = run_at ~opt_level:0 src "mandelbrot.t" in
  let o2, t2, f2 = run_at ~opt_level:2 src "mandelbrot.t" in
  checks "stdout identical" o0 o2;
  checks "both succeed" t0 t2;
  let reduction = 100.0 *. float_of_int (f0 - f2) /. float_of_int f0 in
  checkb
    (Printf.sprintf "fuel reduced >= 15%% (got %.1f%%: %d -> %d)" reduction f0
       f2)
    true
    (reduction >= 15.0)

let test_gemm_optstats_nonzero () =
  let ctx = Terra.Context.create ~mem_bytes:(64 * 1024 * 1024) () in
  let elem = Terra.Types.double in
  let p = { Tuner.Gemm.nb = 32; rm = 4; rn = 2; v = 4 } in
  let kernel = Tuner.Gemm.genkernel ctx ~elem p in
  let driver = Tuner.Gemm.blocked_driver ctx ~elem ~kernel ~nb:32 in
  Terra.Jit.ensure_compiled driver;
  let stats = ctx.Terra.Context.opt_stats in
  checkb "functions optimized" true (stats.Topt.Stats.s_funcs > 0);
  checkb "code shrank" true
    (stats.Topt.Stats.s_after < stats.Topt.Stats.s_before);
  List.iter
    (fun pass ->
      let p = Topt.Stats.pass stats pass in
      checkb (pass ^ " count non-zero on GEMM") true (p.Topt.Stats.p_events > 0))
    [ "copyprop"; "simplify"; "cse"; "licm"; "dce" ]

let test_gemm_fuel_reduction () =
  (* the blocked-GEMM acceptance criterion, at test scale *)
  let run level =
    let ctx =
      Terra.Context.create ~mem_bytes:(64 * 1024 * 1024) ~opt_level:level ()
    in
    let elem = Terra.Types.double in
    let n = 48 in
    let m = Tuner.Gemm.alloc_matrices ctx ~elem n in
    Tuner.Gemm.fill_matrices ctx ~elem m;
    let reference = Tuner.Gemm.reference ctx ~elem m in
    let p = { Tuner.Gemm.nb = 24; rm = 2; rn = 2; v = 4 } in
    let kernel = Tuner.Gemm.genkernel ctx ~elem p in
    let driver = Tuner.Gemm.blocked_driver ctx ~elem ~kernel ~nb:24 in
    Terra.Jit.ensure_compiled driver;
    let s0 = Tvm.Vm.steps ctx.Terra.Context.vm in
    let _ = Tuner.Gemm.run_gemm ctx driver m in
    let fuel = Tvm.Vm.steps ctx.Terra.Context.vm - s0 in
    let err = Tuner.Gemm.max_error ctx ~elem m reference in
    Tuner.Gemm.free_matrices ctx m;
    (fuel, err)
  in
  let f0, e0 = run 0 in
  let f2, e2 = run 2 in
  checkb "opt0 correct" true (e0 < 1e-9);
  checkb "opt2 correct" true (e2 < 1e-9);
  let reduction = 100.0 *. float_of_int (f0 - f2) /. float_of_int f0 in
  checkb
    (Printf.sprintf "gemm fuel reduced >= 15%% (got %.1f%%)" reduction)
    true (reduction >= 15.0)

(* ------------------------------------------------------------------ *)
(* Vector-register spill path (compile.ml satellite) *)

let test_spill_path_matches_no_spill () =
  let ctx = Terra.Context.create ~mem_bytes:(128 * 1024 * 1024) () in
  let elem = Terra.Types.double in
  let n = 48 in
  (* RM=8 x RN=2 at V=4 wants 16+ vector registers: forces spills *)
  let p = { Tuner.Gemm.nb = 48; rm = 8; rn = 2; v = 4 } in
  let spilled = Tuner.Gemm.genkernel ctx ~elem p in
  let unspilled = Tuner.Gemm.genkernel ctx ~elem ~no_spill:true p in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  checkb "spill path exercised: spilltouch in compiled code" true
    (contains (Terra.Jit.disas spilled) "spilltouch");
  checkb "no_spill build has no spilltouch" true
    (not (contains (Terra.Jit.disas unspilled) "spilltouch"));
  let m = Tuner.Gemm.alloc_matrices ctx ~elem n in
  Tuner.Gemm.fill_matrices ctx ~elem m;
  let reference = Tuner.Gemm.reference ctx ~elem m in
  let check name kernel =
    Tuner.Gemm.fill_matrices ctx ~elem m;
    let driver = Tuner.Gemm.blocked_driver ctx ~elem ~kernel ~nb:48 in
    let _ = Tuner.Gemm.run_gemm ctx driver m in
    let err = Tuner.Gemm.max_error ctx ~elem m reference in
    checkb (name ^ " correct") true (err < 1e-9)
  in
  check "spilled kernel" spilled;
  check "no_spill kernel" unspilled;
  Tuner.Gemm.free_matrices ctx m

let () =
  Alcotest.run "topt"
    [
      ( "cfg",
        [
          Alcotest.test_case "roundtrip diamond" `Quick
            test_cfg_roundtrip_diamond;
          Alcotest.test_case "roundtrip loop" `Quick test_cfg_roundtrip_loop;
          Alcotest.test_case "unsupported code bails" `Quick
            test_cfg_unsupported_bails;
          Alcotest.test_case "straight-chain merge keeps edges live" `Quick
            test_cfg_merge_chain;
        ] );
      ( "passes",
        [
          Alcotest.test_case "constant folding" `Quick test_fold_constants;
          Alcotest.test_case "fold preserves div-by-zero" `Quick
            test_fold_preserves_divzero;
          Alcotest.test_case "strength reduction" `Quick
            test_peephole_strength_reduction;
          Alcotest.test_case "lea merge" `Quick test_lea_merge;
          Alcotest.test_case "dce" `Quick test_dce_removes_dead;
          Alcotest.test_case "cse loads gated by checked" `Quick
            test_cse_loads_unchecked_only;
          Alcotest.test_case "cse store barrier" `Quick test_cse_store_barrier;
          Alcotest.test_case "licm" `Quick test_licm_hoists;
          Alcotest.test_case "stats" `Quick test_stats_populated;
        ] );
      ("golden-differential", golden_cases ());
      ( "fuzz",
        [ QCheck_alcotest.to_alcotest prop_fuzz_differential ] );
      ( "acceptance",
        [
          Alcotest.test_case "mandelbrot fuel -15%" `Quick
            test_mandelbrot_fuel_reduction;
          Alcotest.test_case "gemm optstats non-zero" `Quick
            test_gemm_optstats_nonzero;
          Alcotest.test_case "gemm fuel -15%" `Quick test_gemm_fuel_reduction;
          Alcotest.test_case "vector spill path" `Quick
            test_spill_path_matches_no_spill;
        ] );
    ]
