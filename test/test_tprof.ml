(* Tprof: the tracing/profiling layer and its use as a regression
   oracle.

   Four layers are exercised: the probe directly (shadow-stack
   attribution, ring buffer, switches), the report/trace renderings
   (determinism, schema, balanced Chrome events), the engine boundary
   (profile total == fuel, zero observable overhead when off,
   transactions stay coherent), and the profiler-as-oracle gates that
   pin the optimizer's instruction-count wins on real workloads. *)

module Probe = Tprof.Probe
module Report = Tprof.Report
module Trace = Tprof.Trace
module Json = Tprof.Json
open Terra

let checks = Alcotest.(check string)
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let quick = Harness.quick

(* name_of for hand-driven probes *)
let nm id = Printf.sprintf "f%d" id

(* Drive a probe through a canned two-function program:
   enter f1, 5 instrs, call f2, 3 instrs, ret, 2 instrs, ret. *)
let canned ?(on = true) ?(tracing = false) ?ring () =
  let p = Probe.create ?ring () in
  Probe.set_on p on;
  Probe.set_tracing p tracing;
  let retire_n n =
    for _ = 1 to n do
      Probe.retire p
    done
  in
  let p1 = Probe.enter p ~id:1 ~name:"f1" in
  retire_n 5;
  let p2 = Probe.enter p ~id:2 ~name:"f2" in
  retire_n 3;
  Probe.leave p ~id:2 ~pushed:p2;
  retire_n 2;
  Probe.leave p ~id:1 ~pushed:p1;
  p

(* ------------------------------------------------------------------ *)
(* Probe: shadow-stack attribution *)

let probe_tests =
  [
    quick "self/total attribution across nested calls" (fun () ->
        let p = canned () in
        let s1 = Probe.stat p 1 "f1" and s2 = Probe.stat p 2 "f2" in
        checki "f1 self" 7 s1.Probe.fs_self;
        checki "f1 total" 10 s1.Probe.fs_total;
        checki "f2 self" 3 s2.Probe.fs_self;
        checki "f2 total" 3 s2.Probe.fs_total;
        checki "retired" 10 p.Probe.retired;
        checki "tick follows retirement" 10 p.Probe.tick);
    quick "recursive calls never double-count totals" (fun () ->
        let p = Probe.create () in
        Probe.set_on p true;
        let a = Probe.enter p ~id:1 ~name:"f1" in
        Probe.retire p;
        Probe.retire p;
        let b = Probe.enter p ~id:1 ~name:"f1" in
        Probe.retire p;
        Probe.retire p;
        Probe.retire p;
        Probe.leave p ~id:1 ~pushed:b;
        Probe.leave p ~id:1 ~pushed:a;
        let s = Probe.stat p 1 "f1" in
        checki "self" 5 s.Probe.fs_self;
        checki "total == program total despite recursion" 5 s.Probe.fs_total);
    quick "enter while off pushes nothing; leave stays balanced" (fun () ->
        let p = Probe.create () in
        let pushed = Probe.enter p ~id:1 ~name:"f1" in
        checkb "not pushed" false pushed;
        Probe.leave p ~id:1 ~pushed;
        checkb "stack empty" true (p.Probe.stack = []));
    quick "toggling profiling off mid-call keeps the stack balanced"
      (fun () ->
        let p = Probe.create () in
        Probe.set_on p true;
        let pushed = Probe.enter p ~id:1 ~name:"f1" in
        Probe.retire p;
        Probe.set_on p false;
        Probe.retire p;
        (* must still pop: pushed was true *)
        Probe.leave p ~id:1 ~pushed;
        checkb "stack empty" true (p.Probe.stack = []);
        checki "only the on-tick counted" 1 p.Probe.retired);
    quick "caller->callee edges accumulate calls and inclusive ticks"
      (fun () ->
        let p = canned () in
        match Hashtbl.find_opt p.Probe.edges (1, 2) with
        | None -> Alcotest.fail "edge (f1,f2) missing"
        | Some e ->
            checki "calls" 1 e.Probe.es_calls;
            checki "inclusive ticks" 3 e.Probe.es_ticks);
    quick "allocs and frees attribute to the innermost frame" (fun () ->
        let p = Probe.create () in
        Probe.set_on p true;
        let pushed = Probe.enter p ~id:1 ~name:"f1" in
        Probe.alloc p ~addr:0x100 ~bytes:64;
        Probe.alloc p ~addr:0x200 ~bytes:16;
        Probe.free p ~addr:0x100;
        Probe.leave p ~id:1 ~pushed;
        let s = Probe.stat p 1 "f1" in
        checki "frame allocs" 2 s.Probe.fs_allocs;
        checki "frame bytes" 80 s.Probe.fs_alloc_bytes;
        checki "frame frees" 1 s.Probe.fs_frees;
        checki "global allocs" 2 p.Probe.allocs;
        checki "global bytes" 80 p.Probe.alloc_bytes;
        checki "global frees" 1 p.Probe.frees);
    quick "ring buffer overwrites oldest and reports drops" (fun () ->
        let p = Probe.create ~ring:16 () in
        Probe.set_tracing p true;
        for i = 1 to 20 do
          Probe.retire p;
          Probe.mark p (string_of_int i)
        done;
        checki "dropped" 4 (Probe.dropped_events p);
        let evs = Probe.events p in
        checki "capacity kept" 16 (List.length evs);
        (match evs with
        | { Probe.ev_tick = t0; _ } :: _ ->
            checki "oldest surviving event first" 5 t0
        | [] -> Alcotest.fail "no events");
        (* ticks are non-decreasing oldest-first *)
        let rec mono = function
          | a :: (b :: _ as rest) ->
              a.Probe.ev_tick <= b.Probe.ev_tick && mono rest
          | _ -> true
        in
        checkb "monotone ticks" true (mono evs));
    quick "reset clears counters but keeps the switches" (fun () ->
        let p = canned ~tracing:true () in
        Probe.reset p;
        checki "retired" 0 p.Probe.retired;
        checki "tick" 0 p.Probe.tick;
        checki "events" 0 (List.length (Probe.events p));
        checkb "still on" true p.Probe.on;
        checkb "still tracing" true p.Probe.tracing;
        checkb "still active" true p.Probe.active);
  ]

(* ------------------------------------------------------------------ *)
(* Report: ordering, schema, determinism *)

let report_tests =
  [
    quick "flat rows sort by self descending" (fun () ->
        let p = canned () in
        let r = Report.of_probe ~name_of:nm p in
        checks "order"
          (String.concat "," (List.map (fun f -> f.Report.f_name) r.Report.funcs))
          "f1,f2";
        checki "total" 10 r.Report.total);
    quick "json report carries the schema and the exact total" (fun () ->
        let p = canned () in
        let r = Report.of_probe ~name_of:nm p in
        (match Report.to_json_value r with
        | Json.Obj fields ->
            checkb "schema" true
              (List.assoc_opt "schema" fields = Some (Json.Str "terra-prof-1"));
            checkb "total_retired" true
              (List.assoc_opt "total_retired" fields = Some (Json.Int 10));
            checkb "functions is a list" true
              (match List.assoc_opt "functions" fields with
              | Some (Json.List _) -> true
              | _ -> false)
        | _ -> Alcotest.fail "report is not a JSON object");
        checkb "serialized schema tag" true
          (Harness.contains_sub ~sub:"\"terra-prof-1\""
             (Report.to_json r)));
    quick "text rendering is identical for identically-driven probes"
      (fun () ->
        let r1 = Report.of_probe ~name_of:nm (canned ()) in
        let r2 = Report.of_probe ~name_of:nm (canned ()) in
        checks "text" (Report.to_text r1) (Report.to_text r2));
    quick "extra phase rows render after probe phases" (fun () ->
        let p = canned () in
        Probe.phase_count p "jit.codecache.hit";
        let extra = [ { Report.p_name = "opt.dce"; p_count = 3; p_ms = 0.0 } ] in
        let r = Report.of_probe ~extra ~name_of:nm p in
        checkb "both present" true
          (List.exists (fun x -> x.Report.p_name = "jit.codecache.hit")
             r.Report.phases
          && List.exists (fun x -> x.Report.p_name = "opt.dce") r.Report.phases));
  ]

(* ------------------------------------------------------------------ *)
(* Trace: text dump and Chrome export invariants *)

(* Walk a Chrome trace value checking balanced B/E and monotone ts. *)
let check_chrome_invariants v =
  (* Chrome "JSON array format": the top level is the event list *)
  let events =
    match v with
    | Json.List l -> l
    | _ -> Alcotest.fail "trace is not a JSON array"
  in
  let field e k =
    match e with Json.Obj f -> List.assoc_opt k f | _ -> None
  in
  let depth = ref 0 and last_ts = ref min_int in
  List.iter
    (fun e ->
      (match field e "ts" with
      | Some (Json.Int ts) ->
          checkb "ts non-negative" true (ts >= 0);
          checkb "ts monotone" true (ts >= !last_ts);
          last_ts := ts
      | _ -> Alcotest.fail "event without ts");
      match field e "ph" with
      | Some (Json.Str "B") -> incr depth
      | Some (Json.Str "E") ->
          decr depth;
          checkb "E never precedes its B" true (!depth >= 0)
      | Some (Json.Str "i") -> ()
      | _ -> Alcotest.fail "unexpected phase")
    events;
  checki "balanced B/E" 0 !depth;
  events

let trace_tests =
  [
    quick "text dump is tick-stamped and deterministic" (fun () ->
        let d1 = Trace.to_text ~name_of:nm (canned ~tracing:true ()) in
        let d2 = Trace.to_text ~name_of:nm (canned ~tracing:true ()) in
        checks "identical dumps" d1 d2;
        checkb "call line" true (Harness.contains_sub ~sub:"call f2" d1);
        checkb "ret line" true (Harness.contains_sub ~sub:"ret f1" d1));
    quick "text dump flags dropped events" (fun () ->
        let p = Probe.create ~ring:16 () in
        Probe.set_tracing p true;
        for i = 1 to 20 do
          Probe.mark p (string_of_int i)
        done;
        checkb "drop header" true
          (Harness.contains_sub ~sub:"# 4 oldest events dropped"
             (Trace.to_text ~name_of:nm p)));
    quick "chrome export is balanced with monotone timestamps" (fun () ->
        let p = canned ~tracing:true () in
        let evs = check_chrome_invariants (Trace.to_chrome_value ~name_of:nm p) in
        checkb "has events" true (evs <> []));
    quick "chrome export closes still-open calls" (fun () ->
        let p = Probe.create () in
        Probe.set_tracing p true;
        let _ = Probe.enter p ~id:1 ~name:"f1" in
        Probe.retire p;
        let _ = Probe.enter p ~id:2 ~name:"f2" in
        Probe.retire p;
        (* neither call returns: the exporter must synthesize Es *)
        let _ = check_chrome_invariants (Trace.to_chrome_value ~name_of:nm p) in
        ());
    quick "chrome export skips orphan returns" (fun () ->
        let p = Probe.create () in
        Probe.set_tracing p true;
        (* a ret whose call fell off the ring *)
        Probe.leave p ~id:7 ~pushed:false;
        let pushed = Probe.enter p ~id:1 ~name:"f1" in
        Probe.retire p;
        Probe.leave p ~id:1 ~pushed;
        let _ = check_chrome_invariants (Trace.to_chrome_value ~name_of:nm p) in
        ());
  ]

(* ------------------------------------------------------------------ *)
(* Engine boundary *)

let mandel_src () = Harness.read_file (Harness.example "mandelbrot.t")

let alloc_src =
  {|
local std = terralib.includec("stdlib.h")
terra churn()
  var p = [&int32](std.malloc(64))
  p[0] = 7
  var r = p[0]
  std.free(p)
  return r
end
print(churn())
|}

let engine_tests =
  [
    quick "profile total equals the fuel accounting (mandelbrot)" (fun () ->
        Harness.with_engine ~mem_bytes:(64 * 1024 * 1024) ~profile:true
          (fun e ->
            let _ = Harness.run_ok e (mandel_src ()) in
            let r = Engine.profile e in
            checki "total == fuel_used" (Engine.fuel_used e) r.Report.total;
            checkb "something ran" true (r.Report.total > 0)));
    quick "profiles are byte-identical across runs" (fun () ->
        let run () =
          Harness.with_engine ~mem_bytes:(64 * 1024 * 1024) ~profile:true
            (fun e ->
              let _ = Harness.run_ok e (mandel_src ()) in
              Engine.profile_text e)
        in
        checks "profile text" (run ()) (run ()));
    quick "profiling changes neither output nor fuel" (fun () ->
        let run profile =
          Harness.with_engine ~mem_bytes:(64 * 1024 * 1024) ~profile (fun e ->
              let out = Harness.run_ok e (mandel_src ()) in
              (out, Engine.fuel_used e))
        in
        let out_off, fuel_off = run false in
        let out_on, fuel_on = run true in
        checks "stdout" out_off out_on;
        checki "fuel identical with profiling on" fuel_off fuel_on);
    quick "rolled-back transaction stays coherent in the profile" (fun () ->
        Harness.with_engine ~profile:true ~trace:true (fun e ->
            let _ =
              Harness.run_ok e
                {|
local std = terralib.includec("stdlib.h")
terra leaky()
  var p = std.malloc(256)
  return 1
end
local ok = terralib.transact(function()
  leaky()
  error("boom")
end)
print(ok)
|}
            in
            let vm = e.Engine.ctx.Context.vm in
            (* the heap really rolled back... *)
            checki "no live program bytes after rollback" 0
              (Tvm.Alloc.live_bytes vm.Tvm.Vm.alloc);
            (* ...but the probe's monotone counters kept the history *)
            let p = Engine.probe e in
            checkb "allocation recorded" true (p.Probe.allocs >= 1);
            let dump = Engine.trace_text e in
            checkb "txn begin traced" true
              (Harness.contains_sub ~sub:"txn begin" dump);
            checkb "txn rollback traced" true
              (Harness.contains_sub ~sub:"txn rollback" dump)));
    quick "code-cache hits surface as a compile phase" (fun () ->
        Harness.with_engine ~profile:true (fun e ->
            let _ =
              Harness.run_ok e
                "terra f() return 1 end\nprint(f())\nprint(f())"
            in
            let r = Engine.profile e in
            match
              List.find_opt
                (fun p -> p.Report.p_name = "jit.codecache.hit")
                r.Report.phases
            with
            | Some p -> checkb "hit counted" true (p.Report.p_count >= 1)
            | None -> Alcotest.fail "no jit.codecache.hit phase"));
    quick "codecache hits + misses = ensure_compiled visits" (fun () ->
        (* cache accounting ties out by construction, like fuel: every
           non-extern ensure is exactly one hit or one miss *)
        Harness.with_engine ~profile:true (fun e ->
            let _ =
              Harness.run_ok e
                {|
terra g() : int32 return 2 end
terra f() return g() + 1 end
print(f())
print(f())
print(g())
|}
            in
            let phase name =
              match
                List.find_opt
                  (fun p -> p.Report.p_name = name)
                  (Engine.profile e).Report.phases
              with
              | Some p -> p.Report.p_count
              | None -> 0
            in
            let ensure = phase "jit.ensure" in
            let hits = phase "jit.codecache.hit" in
            let misses = phase "jit.codecache.miss" in
            checkb "some ensures" true (ensure > 0);
            checki "misses = functions compiled" 2 misses;
            checki "hits + misses = ensures" ensure (hits + misses)));
    quick "compile phases are timed" (fun () ->
        Harness.with_engine ~profile:true (fun e ->
            let _ = Harness.run_ok e "terra f() return 1 end\nprint(f())" in
            let names =
              List.map (fun p -> p.Report.p_name) (Engine.profile e).Report.phases
            in
            List.iter
              (fun n ->
                checkb (n ^ " present") true (List.mem n names))
              [ "frontend.specialize"; "jit.typecheck"; "jit.compile" ]));
    quick "redzone checks are counted under checked execution" (fun () ->
        Harness.with_engine ~checked:true ~profile:true (fun e ->
            let _ = Harness.run_ok e alloc_src in
            let p = Engine.probe e in
            checkb "redzone checks seen" true (p.Probe.redzone > 0);
            checki "alloc seen" 1 p.Probe.allocs;
            checki "free seen" 1 p.Probe.frees));
    quick "unchecked engine counts no redzone checks" (fun () ->
        Harness.with_engine ~profile:true (fun e ->
            let _ = Harness.run_ok e alloc_src in
            checki "no shadow, no checks" 0 (Engine.probe e).Probe.redzone));
  ]

let lua_api_tests =
  [
    quick "terralib.profileon/profile expose live counters" (fun () ->
        Harness.with_engine (fun e ->
            Harness.run_expect e
              {|
local was = terralib.profileon()
print(was)
terra f() return 21 + 21 end
print(f())
local p = terralib.profile()
print(p.total > 0)
print(p.functions["f"].calls)
terralib.profileoff()
|}
              ~expect:"false\n42\ntrue\n1\n"));
    quick "terralib.profilereset zeroes the counters" (fun () ->
        Harness.with_engine ~profile:true (fun e ->
            Harness.run_expect e
              {|
terra f() return 1 end
print(f())
terralib.profilereset()
local p = terralib.profile()
print(p.total)
|}
              ~expect:"1\n0\n"));
    quick "terralib.traceon/tracedump record VM events" (fun () ->
        Harness.with_engine (fun e ->
            let out =
              Harness.run_ok e
                {|
terralib.traceon()
terra f() return 1 end
print(f())
io.write(terralib.tracedump())
terralib.traceoff()
|}
            in
            checkb "trace sees the call" true
              (Harness.contains_sub ~sub:"call f" out);
            checkb "trace sees the return" true
              (Harness.contains_sub ~sub:"ret f" out)));
    quick "terralib.profiletext matches the engine rendering" (fun () ->
        Harness.with_engine ~profile:true (fun e ->
            let _ = Harness.run_ok e "terra f() return 1 end\nprint(f())" in
            let lua =
              Harness.run_ok e "io.write(terralib.profiletext())"
            in
            (* the second run itself retired instructions, so only the
               shape is compared, not the counts *)
            checkb "flat-profile header" true
              (Harness.contains_sub ~sub:"self" lua);
            checkb "names the function" true
              (Harness.contains_sub ~sub:"f" lua)));
  ]

(* ------------------------------------------------------------------ *)
(* Profiler-as-oracle: optimizer regression gates *)

let gate_tests =
  [
    quick "opt2 mandelbrot retires >=20% fewer instructions than opt0"
      (fun () ->
        let total level =
          Harness.with_engine ~mem_bytes:(64 * 1024 * 1024) ~opt_level:level
            ~profile:true (fun e ->
              let _ = Harness.run_ok e (mandel_src ()) in
              (Engine.profile e).Report.total)
        in
        let t0 = total 0 and t2 = total 2 in
        let reduction = 100.0 *. float_of_int (t0 - t2) /. float_of_int t0 in
        checkb
          (Printf.sprintf
             "mandelbrot retired reduced >= 20%% (measured %.1f%%: %d -> %d)"
             reduction t0 t2)
          true (reduction >= 20.0));
    quick "opt2 blocked DGEMM retires >=30% fewer instructions than opt0"
      (fun () ->
        let run level =
          let ctx =
            Terra.Context.create ~mem_bytes:(128 * 1024 * 1024)
              ~opt_level:level ()
          in
          let elem = Terra.Types.double in
          let n = 96 in
          let m = Tuner.Gemm.alloc_matrices ctx ~elem n in
          Tuner.Gemm.fill_matrices ctx ~elem m;
          let reference = Tuner.Gemm.reference ctx ~elem m in
          let p = { Tuner.Gemm.nb = 24; rm = 2; rn = 2; v = 4 } in
          let kernel = Tuner.Gemm.genkernel ctx ~elem p in
          let driver = Tuner.Gemm.blocked_driver ctx ~elem ~kernel ~nb:24 in
          Terra.Jit.ensure_compiled driver;
          (* enable after compilation: the gate measures the multiply *)
          let probe = Terra.Context.probe ctx in
          Tprof.Probe.set_on probe true;
          let r0 = probe.Probe.retired in
          let _ = Tuner.Gemm.run_gemm ctx driver m in
          let retired = probe.Probe.retired - r0 in
          let err = Tuner.Gemm.max_error ctx ~elem m reference in
          Tuner.Gemm.free_matrices ctx m;
          (retired, err)
        in
        let r0, e0 = run 0 in
        let r2, e2 = run 2 in
        checkb "opt0 correct" true (e0 < 1e-9);
        checkb "opt2 correct" true (e2 < 1e-9);
        let reduction = 100.0 *. float_of_int (r0 - r2) /. float_of_int r0 in
        checkb
          (Printf.sprintf
             "gemm retired reduced >= 30%% (measured %.1f%%: %d -> %d)"
             reduction r0 r2)
          true (reduction >= 30.0));
  ]

(* ------------------------------------------------------------------ *)
(* Parser hardening: the serve front end feeds network bytes straight
   into [Json.of_string], so hostile input must produce the documented
   parse error — never a raw exception, never a stack overflow — and
   printing must invert parsing. *)

(* a representative report-shaped value to mutate *)
let fuzz_base =
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.Str "terra-prof-1");
         ("total_retired", Json.Int 1234567);
         ("f", Json.Float (-12.5));
         ("flags", Json.List [ Json.Bool true; Json.Bool false; Json.Null ]);
         ( "funcs",
           Json.List
             [
               Json.Obj
                 [
                   ("name", Json.Str "main \"quoted\" \\ tab\t\n");
                   ("retired", Json.Int 99);
                   ("nested", Json.List [ Json.Obj [ ("k", Json.Int 1) ] ]);
                 ];
             ] );
       ])

let parser_fuzz_tests =
  [
    quick "deep nesting is a parse error, not a stack overflow" (fun () ->
        let deep n = String.make n '[' ^ "1" ^ String.make n ']' in
        (match Json.of_string (deep 50_000) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted 50k-deep nesting");
        (match Json.of_string (String.make 200_000 '[') with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted an unclosed '[' run");
        (match Json.of_string (String.make 200_000 '{') with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted an unclosed '{' run");
        (* nesting within the documented cap still parses *)
        match Json.of_string (deep 64) with
        | Ok _ -> ()
        | Error m -> Alcotest.failf "rejected 64-deep nesting: %s" m);
    quick "seeded byte mutations never escape the error type" (fun () ->
        (* deterministic LCG so a failure reproduces exactly *)
        let state = ref 0x2545F49 in
        let rand m =
          state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
          !state mod m
        in
        for _ = 1 to 3000 do
          let b = Bytes.of_string fuzz_base in
          for _ = 0 to rand 4 do
            Bytes.set b (rand (Bytes.length b)) (Char.chr (rand 256))
          done;
          match Json.of_string (Bytes.to_string b) with
          | Ok _ | Error _ -> ()
        done);
    quick "every truncation of a valid document is handled" (fun () ->
        for keep = 0 to String.length fuzz_base - 1 do
          match Json.of_string (String.sub fuzz_base 0 keep) with
          | Ok _ | Error _ -> ()
        done;
        match Json.of_string fuzz_base with
        | Ok _ -> ()
        | Error m -> Alcotest.failf "the untruncated document failed: %s" m);
  ]

(* Round-trip property: floats constrained to %.6f-representable values
   (k/1000), matching the emitter's fixed-point format. *)
let gen_json =
  QCheck.Gen.(
    sized_size (int_bound 4)
      (fix (fun self n ->
           let scalar =
             oneof
               [
                 return Json.Null;
                 map (fun b -> Json.Bool b) bool;
                 map (fun i -> Json.Int i) (int_range (-1_000_000) 1_000_000);
                 map
                   (fun k -> Json.Float (float_of_int k /. 1000.))
                   (int_range (-4_000_000) 4_000_000);
                 map (fun s -> Json.Str s) (string_size (int_bound 12));
               ]
           in
           if n = 0 then scalar
           else
             oneof
               [
                 scalar;
                 map (fun l -> Json.List l) (list_size (int_bound 4) (self (n - 1)));
                 map
                   (fun kvs -> Json.Obj kvs)
                   (list_size (int_bound 4)
                      (pair (string_size (int_bound 8)) (self (n - 1))));
               ])))

let prop_json_roundtrip =
  QCheck.Test.make ~count:500 ~name:"of_string inverts to_string"
    (QCheck.make gen_json) (fun j ->
      match Json.of_string (Json.to_string j) with
      | Ok j' -> Json.to_string j' = Json.to_string j
      | Error _ -> false)

let () =
  Alcotest.run "tprof"
    [
      ("probe", probe_tests);
      ("report", report_tests);
      ("trace", trace_tests);
      ("engine", engine_tests);
      ("lua-api", lua_api_tests);
      ("gates", gate_tests);
      ( "parser",
        parser_fuzz_tests
        @ [ QCheck_alcotest.to_alcotest prop_json_roundtrip ] );
    ]
