(* Tests for the VM substrate: memory, allocator, IR semantics. *)

open Tvm
module Ir = Tvm.Ir

let checki = Alcotest.(check int)
let checki64 = Alcotest.(check int64)
let checkf = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)

let new_vm () =
  let vm =
    Vm.create ~mem_bytes:(16 * 1024 * 1024)
      (Tmachine.Machine.create Tmachine.Config.test_tiny)
  in
  Builtins.install vm;
  vm

(* ------------------------------------------------------------------ *)
(* Memory *)

let test_mem_roundtrip () =
  let m = Mem.create ~bytes:(16 * 1024 * 1024) () in
  Mem.set_i64 m 8192 0x1122334455667788L;
  checki64 "i64" 0x1122334455667788L (Mem.get_i64 m 8192);
  Mem.set_f64 m 8200 3.14159;
  checkf "f64" 3.14159 (Mem.get_f64 m 8200);
  Mem.set_f32 m 8208 1.5;
  checkf "f32" 1.5 (Mem.get_f32 m 8208);
  Mem.set_u8 m 8212 200;
  checki "u8" 200 (Mem.get_u8 m 8212);
  checki "i8 sign extends" (-56) (Mem.get_i8 m 8212);
  Mem.set_u16 m 8214 0xBEEF;
  checki "u16" 0xBEEF (Mem.get_u16 m 8214);
  checki "i16 sign extends" (-16657) (Mem.get_i16 m 8214)

let test_mem_little_endian () =
  let m = Mem.create ~bytes:(16 * 1024 * 1024) () in
  Mem.set_i32 m 8192 0x04030201l;
  checki "LE byte 0" 1 (Mem.get_u8 m 8192);
  checki "LE byte 3" 4 (Mem.get_u8 m 8195)

let test_mem_null_faults () =
  let m = Mem.create ~bytes:(16 * 1024 * 1024) () in
  Alcotest.check_raises "null deref"
    (Mem.Fault (0, "load u8"))
    (fun () -> ignore (Mem.get_u8 m 0))

let test_mem_oob_faults () =
  let m = Mem.create ~bytes:(16 * 1024 * 1024) () in
  checkb "oob traps" true
    (match Mem.get_i64 m (Mem.size m + 10) with
    | exception Mem.Fault _ -> true
    | _ -> false)

let test_mem_negative_len_faults () =
  let m = Mem.create ~bytes:(16 * 1024 * 1024) () in
  checkb "negative blit length traps" true
    (match Mem.blit m ~src:8192 ~dst:9000 ~len:(-1) with
    | exception Mem.Fault (_, what) ->
        checkb "names the cause" true
          (String.length what > 0
          && String.sub what (String.length what - 1) 1 = ")");
        true
    | _ -> false);
  checkb "negative fill length traps" true
    (match Mem.fill m 8192 (-8) 'x' with
    | exception Mem.Fault _ -> true
    | _ -> false)

let test_mem_len_overflow_faults () =
  (* addr + len wrapping past the arena must not pass the bounds check *)
  let m = Mem.create ~bytes:(16 * 1024 * 1024) () in
  checkb "huge length traps" true
    (match Mem.fill m 8192 max_int 'x' with
    | exception Mem.Fault _ -> true
    | _ -> false);
  checkb "addr+len overflow traps" true
    (match Mem.blit m ~src:8192 ~dst:(Mem.size m - 4) ~len:8 with
    | exception Mem.Fault _ -> true
    | _ -> false)

let test_cstring_roundtrip () =
  let m = Mem.create ~bytes:(16 * 1024 * 1024) () in
  Mem.set_cstring m 9000 "hello terra";
  Alcotest.(check string) "cstring" "hello terra" (Mem.get_cstring m 9000)

let test_cstring_unterminated_bounded () =
  (* a missing NUL must fault after max_cstring bytes, not scan the
     whole arena *)
  let m = Mem.create ~bytes:(4 * 1024 * 1024) () in
  Mem.fill m Mem.statics_base (Mem.size m - Mem.statics_base) 'a';
  checkb "scan is bounded" true (Mem.max_cstring <= 1 lsl 20);
  checkb "unterminated string traps" true
    (match Mem.get_cstring m Mem.statics_base with
    | exception Mem.Fault (_, what) ->
        checkb "mentions the missing NUL" true
          (String.length what >= 12 && String.sub what 0 12 = "unterminated");
        true
    | _ -> false)

let test_blit () =
  let m = Mem.create ~bytes:(16 * 1024 * 1024) () in
  Mem.set_i64 m 8192 42L;
  Mem.blit m ~src:8192 ~dst:9000 ~len:8;
  checki64 "copied" 42L (Mem.get_i64 m 9000)

let test_alloc_static_aligned () =
  let m = Mem.create ~bytes:(16 * 1024 * 1024) () in
  let a = Mem.alloc_static m ~align:1 3 in
  let b = Mem.alloc_static m ~align:16 8 in
  checki "aligned" 0 (b mod 16);
  checkb "no overlap" true (b >= a + 3)

(* ------------------------------------------------------------------ *)
(* Allocator *)

let test_malloc_basic () =
  let m = Mem.create ~bytes:(16 * 1024 * 1024) () in
  let a = Alloc.create m in
  let p1 = Alloc.malloc a 100 in
  let p2 = Alloc.malloc a 100 in
  checkb "distinct" true (p2 >= p1 + 100 || p1 >= p2 + 100);
  checki "aligned" 0 (p1 mod 16);
  Alloc.free a p1;
  Alloc.free a p2;
  checki "all freed" 0 (Alloc.live_blocks a)

let test_free_reuse () =
  let m = Mem.create ~bytes:(16 * 1024 * 1024) () in
  let a = Alloc.create m in
  let p1 = Alloc.malloc a (1 lsl 20) in
  Alloc.free a p1;
  let p2 = Alloc.malloc a (1 lsl 20) in
  checkb "space reused" true (p2 <= p1 + 1024)

let test_double_free_rejected () =
  let m = Mem.create ~bytes:(16 * 1024 * 1024) () in
  let a = Alloc.create m in
  let p = Alloc.malloc a 64 in
  Alloc.free a p;
  Alcotest.check_raises "double free" (Alloc.Invalid_free p) (fun () ->
      Alloc.free a p)

let test_free_null_ok () =
  let m = Mem.create ~bytes:(16 * 1024 * 1024) () in
  let a = Alloc.create m in
  Alloc.free a 0

let test_realloc_copies () =
  let m = Mem.create ~bytes:(16 * 1024 * 1024) () in
  let a = Alloc.create m in
  let p = Alloc.malloc a 16 in
  Mem.set_i64 m p 777L;
  let q = Alloc.realloc a p 256 in
  checki64 "contents copied" 777L (Mem.get_i64 m q)

let test_oom () =
  let m = Mem.create ~bytes:(16 * 1024 * 1024) () in
  let a = Alloc.create m in
  checkb "OOM raised" true
    (match Alloc.malloc a (1 lsl 62) with
    | exception Alloc.Out_of_memory _ -> true
    | _ -> false)

let prop_no_overlap =
  QCheck.Test.make ~count:50 ~name:"live blocks never overlap"
    QCheck.(list_of_size Gen.(int_range 1 40) (int_range 1 4096))
    (fun sizes ->
      let m = Mem.create ~bytes:(16 * 1024 * 1024) () in
      let a = Alloc.create m in
      let ptrs = List.map (fun s -> (Alloc.malloc a s, s)) sizes in
      (* free every other block, then allocate again *)
      List.iteri (fun i (p, _) -> if i mod 2 = 0 then Alloc.free a p) ptrs;
      let _more = List.map (fun s -> Alloc.malloc a s) sizes in
      let blocks = List.sort compare (Alloc.blocks a) in
      let rec ok = function
        | (a1, s1) :: ((a2, _) :: _ as rest) -> a1 + s1 <= a2 && ok rest
        | _ -> true
      in
      ok blocks)

let prop_malloc_free_balance =
  QCheck.Test.make ~count:50 ~name:"free restores live_bytes"
    QCheck.(list_of_size Gen.(int_range 1 30) (int_range 1 10000))
    (fun sizes ->
      let m = Mem.create ~bytes:(16 * 1024 * 1024) () in
      let a = Alloc.create m in
      let ptrs = List.map (Alloc.malloc a) sizes in
      List.iter (Alloc.free a) ptrs;
      Alloc.live_bytes a = 0 && Alloc.live_blocks a = 0)

(* ------------------------------------------------------------------ *)
(* VM execution *)

let compile_and_run ?(args = [||]) code ~nparams ~nregs =
  let vm = new_vm () in
  let id =
    Vm.add_func vm { Ir.fname = "t"; nparams; nregs; frame_bytes = 64; code }
  in
  Vm.call vm id args

let test_ret_const () =
  match compile_and_run [| Ir.Ret (Some (Ir.Ki 42L)) |] ~nparams:0 ~nregs:0 with
  | Vm.VI v -> checki64 "const" 42L v
  | _ -> Alcotest.fail "expected int"

let test_int_arith () =
  let cases =
    [
      (Ir.Add, 7L, 3L, 10L); (Ir.Sub, 7L, 3L, 4L); (Ir.Mul, 7L, 3L, 21L);
      (Ir.Divs, 7L, 3L, 2L); (Ir.Divs, -7L, 3L, -2L); (Ir.Rems, 7L, 3L, 1L);
      (Ir.Band, 6L, 3L, 2L); (Ir.Bor, 6L, 3L, 7L); (Ir.Bxor, 6L, 3L, 5L);
      (Ir.Shl, 3L, 4L, 48L); (Ir.Shrs, -16L, 2L, -4L);
      (Ir.Lts, 3L, 7L, 1L); (Ir.Gts, 3L, 7L, 0L);
      (Ir.Mins, 3L, 7L, 3L); (Ir.Maxs, 3L, 7L, 7L);
      (Ir.Ltu, -1L, 1L, 0L) (* unsigned: 2^64-1 > 1 *);
    ]
  in
  List.iter
    (fun (op, a, b, expect) ->
      match
        compile_and_run ~nparams:0 ~nregs:1
          [| Ir.Ibin (op, 0, Ir.Ki a, Ir.Ki b); Ir.Ret (Some (Ir.R 0)) |]
      with
      | Vm.VI v ->
          checki64 (Printf.sprintf "%s %Ld %Ld" (Ir.ibin_name op) a b) expect v
      | _ -> Alcotest.fail "int expected")
    cases

let test_div_by_zero_traps () =
  checkb "traps" true
    (match
       compile_and_run ~nparams:0 ~nregs:1
         [| Ir.Ibin (Ir.Divs, 0, Ir.Ki 1L, Ir.Ki 0L); Ir.Ret (Some (Ir.R 0)) |]
     with
    | exception Vm.Trap _ -> true
    | _ -> false)

let test_float_arith () =
  match
    compile_and_run ~nparams:0 ~nregs:2
      [|
        Ir.Fbin (Ir.Fk64, Ir.FMul, 0, Ir.Kf 2.5, Ir.Kf 4.0);
        Ir.Fbin (Ir.Fk64, Ir.FAdd, 1, Ir.R 0, Ir.Kf 1.0);
        Ir.Ret (Some (Ir.R 1));
      |]
  with
  | Vm.VF v -> checkf "2.5*4+1" 11.0 v
  | _ -> Alcotest.fail "float expected"

let test_f32_rounding () =
  (* f32 arithmetic rounds to single precision *)
  match
    compile_and_run ~nparams:0 ~nregs:1
      [|
        Ir.Fbin (Ir.Fk32, Ir.FAdd, 0, Ir.Kf 0.1, Ir.Kf 0.2);
        Ir.Ret (Some (Ir.R 0));
      |]
  with
  | Vm.VF v ->
      checkf "f32 rounded" (Int32.float_of_bits (Int32.bits_of_float 0.3)) v
  | _ -> Alcotest.fail "float expected"

let test_branch_loop () =
  (* sum 1..10 *)
  let code =
    [|
      Ir.Mov (0, Ir.Ki 0L) (* acc *);
      Ir.Mov (1, Ir.Ki 1L) (* i *);
      (* 2: *) Ir.Ibin (Ir.Les, 2, Ir.R 1, Ir.Ki 10L);
      Ir.Br (Ir.R 2, 4, 7);
      (* 4: *) Ir.Ibin (Ir.Add, 0, Ir.R 0, Ir.R 1);
      Ir.Ibin (Ir.Add, 1, Ir.R 1, Ir.Ki 1L);
      Ir.Jmp 2;
      (* 7: *) Ir.Ret (Some (Ir.R 0));
    |]
  in
  match compile_and_run code ~nparams:0 ~nregs:3 with
  | Vm.VI v -> checki64 "sum" 55L v
  | _ -> Alcotest.fail "int"

let test_load_store () =
  let vm = new_vm () in
  let addr = Alloc.malloc vm.Vm.alloc 64 in
  let code =
    [|
      Ir.Store (Ir.F64, Ir.Ki (Int64.of_int addr), Ir.Kf 6.25);
      Ir.Load (Ir.F64, 0, Ir.Ki (Int64.of_int addr));
      Ir.Ret (Some (Ir.R 0));
    |]
  in
  let id =
    Vm.add_func vm { Ir.fname = "ls"; nparams = 0; nregs = 1; frame_bytes = 0; code }
  in
  match Vm.call vm id [||] with
  | Vm.VF v -> checkf "roundtrip" 6.25 v
  | _ -> Alcotest.fail "float"

let test_narrow_store_truncates () =
  let vm = new_vm () in
  let addr = Alloc.malloc vm.Vm.alloc 64 in
  let code =
    [|
      Ir.Store (Ir.U8, Ir.Ki (Int64.of_int addr), Ir.Ki 0x1FFL);
      Ir.Load (Ir.U8, 0, Ir.Ki (Int64.of_int addr));
      Ir.Ret (Some (Ir.R 0));
    |]
  in
  let id =
    Vm.add_func vm { Ir.fname = "n"; nparams = 0; nregs = 1; frame_bytes = 0; code }
  in
  match Vm.call vm id [||] with
  | Vm.VI v -> checki64 "truncated" 0xFFL v
  | _ -> Alcotest.fail "int"

let test_vector_ops () =
  let vm = new_vm () in
  let addr = Alloc.malloc vm.Vm.alloc 64 in
  let code =
    [|
      Ir.Vsplat (Ir.Fk64, 4, 0, Ir.Kf 3.0);
      Ir.Vsplat (Ir.Fk64, 4, 1, Ir.Kf 2.0);
      Ir.Vbin (Ir.Fk64, 4, Ir.FMul, 2, Ir.R 0, Ir.R 1);
      Ir.Vstore (Ir.Fk64, 4, Ir.Ki (Int64.of_int addr), Ir.R 2);
      Ir.Vload (Ir.Fk64, 4, 3, Ir.Ki (Int64.of_int addr));
      Ir.Vextract (4, Ir.R 3, 2);
      Ir.Ret (Some (Ir.R 4));
    |]
  in
  let id =
    Vm.add_func vm { Ir.fname = "v"; nparams = 0; nregs = 5; frame_bytes = 0; code }
  in
  match Vm.call vm id [||] with
  | Vm.VF v -> checkf "splat mul" 6.0 v
  | _ -> Alcotest.fail "float"

let test_call_and_args () =
  let vm = new_vm () in
  let callee =
    Vm.add_func vm
      {
        Ir.fname = "add";
        nparams = 2;
        nregs = 3;
        frame_bytes = 0;
        code = [| Ir.Ibin (Ir.Add, 2, Ir.R 0, Ir.R 1); Ir.Ret (Some (Ir.R 2)) |];
      }
  in
  let caller =
    Vm.add_func vm
      {
        Ir.fname = "main";
        nparams = 0;
        nregs = 1;
        frame_bytes = 0;
        code =
          [| Ir.Call (Some 0, callee, [ Ir.Ki 40L; Ir.Ki 2L ]); Ir.Ret (Some (Ir.R 0)) |];
      }
  in
  match Vm.call vm caller [||] with
  | Vm.VI v -> checki64 "call" 42L v
  | _ -> Alcotest.fail "int"

let test_indirect_call () =
  let vm = new_vm () in
  let callee =
    Vm.add_func vm
      {
        Ir.fname = "seven";
        nparams = 0;
        nregs = 0;
        frame_bytes = 0;
        code = [| Ir.Ret (Some (Ir.Ki 7L)) |];
      }
  in
  let fptr = Int64.of_int (Ir.func_addr callee) in
  let caller =
    Vm.add_func vm
      {
        Ir.fname = "main";
        nparams = 0;
        nregs = 1;
        frame_bytes = 0;
        code = [| Ir.Callind (Some 0, Ir.Ki fptr, []); Ir.Ret (Some (Ir.R 0)) |];
      }
  in
  match Vm.call vm caller [||] with
  | Vm.VI v -> checki64 "indirect" 7L v
  | _ -> Alcotest.fail "int"

let test_indirect_bad_address_traps () =
  let vm = new_vm () in
  let caller =
    Vm.add_func vm
      {
        Ir.fname = "main";
        nparams = 0;
        nregs = 1;
        frame_bytes = 0;
        code = [| Ir.Callind (Some 0, Ir.Ki 12345L, []); Ir.Ret (Some (Ir.R 0)) |];
      }
  in
  checkb "traps" true
    (match Vm.call vm caller [||] with
    | exception Vm.Trap _ -> true
    | _ -> false)

let test_undefined_function_traps () =
  let vm = new_vm () in
  let id = Vm.declare_func vm "ghost" in
  checkb "link error" true
    (match Vm.call vm id [||] with
    | exception Vm.Trap msg -> String.length msg > 0
    | _ -> false)

let test_frame_addr_and_stack () =
  let vm = new_vm () in
  let id =
    Vm.add_func vm
      {
        Ir.fname = "f";
        nparams = 0;
        nregs = 2;
        frame_bytes = 32;
        code =
          [|
            Ir.FrameAddr (0, 8);
            Ir.Store (Ir.I64, Ir.R 0, Ir.Ki 99L);
            Ir.Load (Ir.I64, 1, Ir.R 0);
            Ir.Ret (Some (Ir.R 1));
          |];
      }
  in
  (match Vm.call vm id [||] with
  | Vm.VI v -> checki64 "frame slot" 99L v
  | _ -> Alcotest.fail "int");
  (* stack pointer restored *)
  checki "sp restored" (Mem.stack_top vm.Vm.mem) vm.Vm.sp

let test_fuel_stops_infinite_loop () =
  let vm = new_vm () in
  Vm.set_fuel vm 10_000;
  let id =
    Vm.add_func vm
      { Ir.fname = "spin"; nparams = 0; nregs = 0; frame_bytes = 0; code = [| Ir.Jmp 0 |] }
  in
  checkb "fuel trap" true
    (match Vm.call vm id [||] with
    | exception Vm.Trap "fuel exhausted" -> true
    | _ -> false)

let test_builtin_malloc_free () =
  let vm = new_vm () in
  let malloc = Vm.import vm "malloc" in
  let free = Vm.import vm "free" in
  let id =
    Vm.add_func vm
      {
        Ir.fname = "m";
        nparams = 0;
        nregs = 2;
        frame_bytes = 0;
        code =
          [|
            Ir.Ccall (Some 0, malloc, [ Ir.Ki 128L ]);
            Ir.Store (Ir.I64, Ir.R 0, Ir.Ki 5L);
            Ir.Load (Ir.I64, 1, Ir.R 0);
            Ir.Ccall (None, free, [ Ir.R 0 ]);
            Ir.Ret (Some (Ir.R 1));
          |];
      }
  in
  (match Vm.call vm id [||] with
  | Vm.VI v -> checki64 "heap roundtrip" 5L v
  | _ -> Alcotest.fail "int");
  checki "no leak" 0 (Alloc.live_blocks vm.Vm.alloc)

let test_builtin_sqrt () =
  let vm = new_vm () in
  let sqrt_i = Vm.import vm "sqrt" in
  let id =
    Vm.add_func vm
      {
        Ir.fname = "s";
        nparams = 0;
        nregs = 1;
        frame_bytes = 0;
        code = [| Ir.Ccall (Some 0, sqrt_i, [ Ir.Kf 49.0 ]); Ir.Ret (Some (Ir.R 0)) |];
      }
  in
  match Vm.call vm id [||] with
  | Vm.VF v -> checkf "sqrt" 7.0 v
  | _ -> Alcotest.fail "float"

let test_unresolved_import_traps () =
  let vm = new_vm () in
  let imp = Vm.import vm "no_such_c_function" in
  let id =
    Vm.add_func vm
      {
        Ir.fname = "u";
        nparams = 0;
        nregs = 1;
        frame_bytes = 0;
        code = [| Ir.Ccall (Some 0, imp, []); Ir.Ret (Some (Ir.R 0)) |];
      }
  in
  checkb "traps" true
    (match Vm.call vm id [||] with exception Vm.Trap _ -> true | _ -> false)

let test_unset_slot_traps () =
  let vm = new_vm () in
  (* calling a slot that was never declared must be a clear diagnostic,
     not an index error or a confusing empty-name link failure *)
  checkb "trap names the slot" true
    (match Vm.call vm 7 [||] with
    | exception Vm.Trap msg -> msg = "call to unset function slot 7"
    | _ -> false);
  checkb "negative slot traps too" true
    (match Vm.call vm (-1) [||] with
    | exception Vm.Trap _ -> true
    | _ -> false)

let test_unset_slots_distinct () =
  let vm = new_vm () in
  (* the funcs array must not alias one shared placeholder record *)
  checkb "fresh slots are distinct records" true
    (vm.Vm.funcs.(0) != vm.Vm.funcs.(1));
  let _ = Vm.declare_func vm "a" in
  (* force a grow past the initial 16 slots *)
  for i = 0 to 20 do
    ignore (Vm.declare_func vm (Printf.sprintf "f%d" i))
  done;
  checkb "grown slots are distinct records" true
    (vm.Vm.funcs.(30) != vm.Vm.funcs.(31))

(* golden output for the IR pretty-printers (satellite of --dump-ir) *)
let test_pp_instr_golden () =
  let checks = Alcotest.(check string) in
  let pp i = Format.asprintf "%a" Ir.pp_instr i in
  checks "mov" "r1 := 42" (pp (Ir.Mov (1, Ir.Ki 42L)));
  checks "ibin" "r2 := add r0 r1" (pp (Ir.Ibin (Ir.Add, 2, Ir.R 0, Ir.R 1)));
  checks "fbin" "r3 := fmul r1 2.5" (pp (Ir.Fbin (Ir.Fk64, Ir.FMul, 3, Ir.R 1, Ir.Kf 2.5)));
  checks "lea" "r4 := lea r0 + r1*8 + 16" (pp (Ir.Lea (4, Ir.R 0, Ir.R 1, 8, 16)));
  checks "load" "r5 := load.f64 [r4]" (pp (Ir.Load (Ir.F64, 5, Ir.R 4)));
  checks "store" "store.i32 [r4] r5" (pp (Ir.Store (Ir.I32, Ir.R 4, Ir.R 5)));
  checks "vload" "r6 := vload.4 [r4]" (pp (Ir.Vload (Ir.Fk64, 4, 6, Ir.R 4)));
  checks "cvt" "r7 := cvt.i64->f64 r0" (pp (Ir.Cvt (Ir.I64, Ir.F64, 7, Ir.R 0)));
  checks "call" "r8 := call f3(r0, 1)"
    (pp (Ir.Call (Some 8, 3, [ Ir.R 0; Ir.Ki 1L ])));
  checks "void call" "_ := call f3()" (pp (Ir.Call (None, 3, [])));
  checks "br" "br r0 3 7" (pp (Ir.Br (Ir.R 0, 3, 7)));
  checks "ret" "ret r0" (pp (Ir.Ret (Some (Ir.R 0))));
  checks "frameaddr" "r9 := sp + 24" (pp (Ir.FrameAddr (9, 24)))

let test_pp_func_golden () =
  let f =
    {
      Ir.fname = "axpy";
      nparams = 2;
      nregs = 3;
      frame_bytes = 0;
      code =
        [|
          Ir.Fbin (Ir.Fk64, Ir.FMul, 2, Ir.R 0, Ir.Kf 2.0);
          Ir.Fbin (Ir.Fk64, Ir.FAdd, 2, Ir.R 2, Ir.R 1);
          Ir.Ret (Some (Ir.R 2));
        |];
    }
  in
  Alcotest.(check string)
    "pp_func"
    "func axpy(2 params, 3 regs, frame 0):\n\
    \    0: r2 := fmul r0 2\n\
    \    1: r2 := fadd r2 r1\n\
    \    2: ret r2\n"
    (Format.asprintf "%a" Ir.pp_func f)

let prop_cvt_int_widths =
  QCheck.Test.make ~count:200 ~name:"cvt to i8/i16/i32 wraps like C"
    QCheck.int64 (fun x ->
      let run to_t =
        match
          compile_and_run ~nparams:0 ~nregs:1
            [| Ir.Cvt (Ir.I64, to_t, 0, Ir.Ki x); Ir.Ret (Some (Ir.R 0)) |]
        with
        | Vm.VI v -> v
        | _ -> Alcotest.fail "int"
      in
      let i8 = run Ir.I8 and i32 = run Ir.I32 in
      let expect_i8 =
        let m = Int64.to_int (Int64.logand x 0xffL) in
        Int64.of_int (if m >= 128 then m - 256 else m)
      in
      i8 = expect_i8 && i32 = Int64.of_int32 (Int64.to_int32 x))

let prop_int_add_matches_ocaml =
  QCheck.Test.make ~count:200 ~name:"VM int arithmetic = Int64 arithmetic"
    QCheck.(pair int64 int64)
    (fun (a, b) ->
      let run op =
        match
          compile_and_run ~nparams:0 ~nregs:1
            [| Ir.Ibin (op, 0, Ir.Ki a, Ir.Ki b); Ir.Ret (Some (Ir.R 0)) |]
        with
        | Vm.VI v -> v
        | _ -> Alcotest.fail "int"
      in
      run Ir.Add = Int64.add a b
      && run Ir.Sub = Int64.sub a b
      && run Ir.Mul = Int64.mul a b)

let () =
  Alcotest.run "tvm"
    [
      ( "mem",
        [
          Alcotest.test_case "scalar roundtrip" `Quick test_mem_roundtrip;
          Alcotest.test_case "little endian" `Quick test_mem_little_endian;
          Alcotest.test_case "null faults" `Quick test_mem_null_faults;
          Alcotest.test_case "oob faults" `Quick test_mem_oob_faults;
          Alcotest.test_case "negative length faults" `Quick
            test_mem_negative_len_faults;
          Alcotest.test_case "length overflow faults" `Quick
            test_mem_len_overflow_faults;
          Alcotest.test_case "cstring" `Quick test_cstring_roundtrip;
          Alcotest.test_case "unterminated cstring bounded" `Quick
            test_cstring_unterminated_bounded;
          Alcotest.test_case "blit" `Quick test_blit;
          Alcotest.test_case "static alloc aligned" `Quick
            test_alloc_static_aligned;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "malloc basic" `Quick test_malloc_basic;
          Alcotest.test_case "free reuse" `Quick test_free_reuse;
          Alcotest.test_case "double free rejected" `Quick
            test_double_free_rejected;
          Alcotest.test_case "free null ok" `Quick test_free_null_ok;
          Alcotest.test_case "realloc copies" `Quick test_realloc_copies;
          Alcotest.test_case "out of memory" `Quick test_oom;
          QCheck_alcotest.to_alcotest prop_no_overlap;
          QCheck_alcotest.to_alcotest prop_malloc_free_balance;
        ] );
      ( "vm",
        [
          Alcotest.test_case "ret const" `Quick test_ret_const;
          Alcotest.test_case "int arithmetic" `Quick test_int_arith;
          Alcotest.test_case "div by zero traps" `Quick test_div_by_zero_traps;
          Alcotest.test_case "float arithmetic" `Quick test_float_arith;
          Alcotest.test_case "f32 rounding" `Quick test_f32_rounding;
          Alcotest.test_case "branch loop" `Quick test_branch_loop;
          Alcotest.test_case "load/store" `Quick test_load_store;
          Alcotest.test_case "narrow store truncates" `Quick
            test_narrow_store_truncates;
          Alcotest.test_case "vector ops" `Quick test_vector_ops;
          Alcotest.test_case "call with args" `Quick test_call_and_args;
          Alcotest.test_case "indirect call" `Quick test_indirect_call;
          Alcotest.test_case "indirect bad address traps" `Quick
            test_indirect_bad_address_traps;
          Alcotest.test_case "undefined function traps" `Quick
            test_undefined_function_traps;
          Alcotest.test_case "unset slot traps" `Quick test_unset_slot_traps;
          Alcotest.test_case "unset slots are distinct" `Quick
            test_unset_slots_distinct;
          Alcotest.test_case "pp_instr golden" `Quick test_pp_instr_golden;
          Alcotest.test_case "pp_func golden" `Quick test_pp_func_golden;
          Alcotest.test_case "frame and stack" `Quick test_frame_addr_and_stack;
          Alcotest.test_case "fuel stops infinite loop" `Quick
            test_fuel_stops_infinite_loop;
          Alcotest.test_case "malloc/free builtins" `Quick
            test_builtin_malloc_free;
          Alcotest.test_case "sqrt builtin" `Quick test_builtin_sqrt;
          Alcotest.test_case "unresolved import traps" `Quick
            test_unresolved_import_traps;
          QCheck_alcotest.to_alcotest prop_cvt_int_widths;
          QCheck_alcotest.to_alcotest prop_int_add_matches_ocaml;
        ] );
    ]
